#include "server/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/log.hpp"
#include "fault/injector.hpp"
#include "net/endpoint.hpp"
#include "obs/histogram.hpp"
#include "obs/prometheus.hpp"
#include "obs/tracer.hpp"
#include "trace/counters.hpp"

namespace ewc::server {

namespace {

/// Reactor tick: bounds deadline-sweep latency without busy-waiting.
constexpr common::Duration kTick = common::Duration::from_millis(50.0);

/// The daemon's counters, resolved to atomic cells once: the pump handlers
/// bump these per frame, so each hit is one relaxed atomic add with no
/// registry lock. The `server.*` namespace is documented in docs/SERVER.md.
struct ServerCounters {
  trace::Counters::Handle connections_accepted, connections_rejected,
      connections_closed, protocol_errors, admitted, rejected, requests,
      replies, flushes, shutdown_requests, stats_requests, metrics_requests,
      deadline_expired, drain_failed_replies, drain_flush_timeouts,
      replayed_requests, parked_replies, accept_backoff, migrate_exports,
      migrate_imports, migrate_refusals;
};

ServerCounters& counters() {
  auto h = [](const char* n) {
    return trace::Counters::instance().handle(n);
  };
  static ServerCounters* s = new ServerCounters{
      h("server.connections.accepted"), h("server.connections.rejected"),
      h("server.connections.closed"),   h("server.protocol_errors"),
      h("server.admitted"),             h("server.rejected"),
      h("server.requests"),             h("server.replies"),
      h("server.flushes"),              h("server.shutdown_requests"),
      h("server.stats_requests"),       h("server.metrics_requests"),
      h("server.deadline_expired"),
      h("server.drain.failed_replies"), h("server.drain.flush_timeouts"),
      h("server.replayed_requests"),    h("server.parked_replies"),
      h("server.accept_backoff"),       h("server.migrate.exports"),
      h("server.migrate.imports"),      h("server.migrate.refusals")};
  return *s;
}

obs::Histogram* request_latency_hist() {
  static obs::Histogram* hist = obs::HistogramRegistry::instance().get(
      "server.request_latency_seconds");
  return hist;
}

}  // namespace

Server::Server(consolidate::Backend& backend, ServerOptions options)
    : backend_(backend), options_(std::move(options)) {}

Server::~Server() {
  if (running_.load()) stop();
  sampler_.reset();  // joins the sampler tick thread
  reactor_.reset();  // joins the event loop + pump workers
  backend_replies_->close();
  if (demux_.joinable()) demux_.join();
}

bool Server::start(std::string* error) {
  if (running_.load()) {
    if (error) *error = "server already running";
    return false;
  }
  const auto ep = net::Endpoint::parse(options_.socket_path, error);
  if (!ep.has_value()) return false;
  auto listener =
      ep->is_unix()
          ? net::Listener::bind_unix(ep->path, /*backlog=*/128, error)
          : net::Listener::bind_tcp(ep->host, ep->port, /*backlog=*/128,
                                    error);
  if (!listener.has_value()) return false;
  bound_endpoint_ = listener->name();

  Reactor::Options ropt;
  ropt.workers = options_.workers;
  ropt.tick = kTick;
  ropt.io_timeout = options_.io_timeout;
  Reactor::Handler handler;
  handler.on_open = [this](const Reactor::ConnPtr& c) { on_open(c); };
  handler.on_frame = [this](const Reactor::ConnPtr& c, net::Frame f) {
    on_frame(c, std::move(f));
  };
  handler.on_close = [this](const Reactor::ConnPtr& c, CloseReason r,
                            const std::string& m) { on_close(c, r, m); };
  handler.on_accept_backoff = [this] {
    counters().accept_backoff.inc();
    common::log_info("ewcd: accept backoff (fd pressure)");
  };
  handler.on_tick = [this] { on_tick(); };
  handler.on_shutdown = [this] { drain(); };
  handler.on_stopped = [this] {
    running_.store(false);
    {
      std::lock_guard lock(stopped_mu_);
      stopped_ = true;
    }
    stopped_cv_.notify_all();
  };
  reactor_ = std::make_unique<Reactor>(ropt, std::move(handler));

  {
    std::lock_guard lock(stopped_mu_);
    stopped_ = false;
  }
  running_.store(true);
  started_at_ = std::chrono::steady_clock::now();
  if (!reactor_->start(std::move(*listener), error)) {
    running_.store(false);
    {
      std::lock_guard lock(stopped_mu_);
      stopped_ = true;
    }
    return false;
  }
  demux_ = std::thread([this] { demux_loop(); });
  start_sampler();
  return true;
}

void Server::start_sampler() {
  if (options_.metrics_interval <= 0.0) return;
  sampler_ = std::make_unique<obs::Sampler>(options_.metrics_history);
  auto counter = [](const char* name) {
    trace::Counters::Handle h = trace::Counters::instance().handle(name);
    return [h]() mutable { return h.value(); };
  };
  sampler_->add_rate("rps", counter("server.replies"));
  sampler_->add_rate("power_watts", counter("backend.total_energy_joules"));
  sampler_->add_ratio("joules_per_request",
                      counter("backend.total_energy_joules"),
                      counter("server.replies"));
  sampler_->add_histogram_percentile(
      "p95_seconds", [] { return request_latency_hist()->snapshot(); },
      95.0);
  sampler_->add_gauge("inflight", [] {
    const ServerCounters& c = counters();
    return std::max(0.0, c.admitted.value() - c.replies.value() -
                             c.deadline_expired.value() -
                             c.drain_failed_replies.value());
  });
  // Cumulative gauges alongside the derived rates: a one-shot scrape can
  // compute run-average joules/request (energy / requests) without any
  // interval sensitivity.
  sampler_->add_gauge("energy_joules", counter("backend.total_energy_joules"));
  sampler_->add_gauge("requests", counter("server.replies"));
  sampler_->start(options_.metrics_interval);
}

void Server::notify_stop() {
  if (reactor_ != nullptr) reactor_->notify_stop();
}

void Server::wait() {
  std::unique_lock lock(stopped_mu_);
  stopped_cv_.wait(lock, [&] { return stopped_; });
}

void Server::stop() {
  notify_stop();
  wait();
}

int Server::active_connections() const {
  std::lock_guard lock(conns_mu_);
  int n = 0;
  for (const auto& [id, ctx] : conns_) {
    if (ctx->state.load() != ConnCtx::State::kRejecting) ++n;
  }
  return n;
}

void Server::on_open(const Reactor::ConnPtr& conn) {
  auto ctx = std::make_shared<ConnCtx>();
  ctx->conn = conn;
  ctx->hello_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.io_timeout.seconds()));
  conn->set_ctx(ctx);
  const bool full = active_connections() >= options_.max_clients;
  if (full) {
    // Turn the connection away explicitly rather than letting it hang —
    // but only after its hello arrives: replying before the client sent
    // anything could RST the socket and lose the error frame.
    ctx->state.store(ConnCtx::State::kRejecting);
    counters().connections_rejected.inc();
  } else {
    counters().connections_accepted.inc();
  }
  std::lock_guard lock(conns_mu_);
  conns_.emplace(conn->id(), std::move(ctx));
}

void Server::on_frame(const Reactor::ConnPtr& conn, net::Frame frame) {
  auto ctx = std::static_pointer_cast<ConnCtx>(conn->ctx());
  if (ctx == nullptr) return;
  switch (ctx->state.load()) {
    case ConnCtx::State::kRejecting: {
      conn->send(static_cast<std::uint16_t>(MsgType::kError),
                 encode_error({"server full"}));
      ctx->state.store(ConnCtx::State::kClosed);
      conn->close_async();
      return;
    }
    case ConnCtx::State::kAwaitHello:
      handle_hello(conn, ctx, frame);
      return;
    case ConnCtx::State::kServing:
      break;
    case ConnCtx::State::kClosed:
      return;
  }
  switch (static_cast<MsgType>(frame.type)) {
    case MsgType::kLaunch:
      handle_launch(conn, ctx, frame);
      break;
    case MsgType::kFlush:
      handle_flush(conn, frame);
      break;
    case MsgType::kShutdown:
      counters().shutdown_requests.inc();
      notify_stop();
      break;
    case MsgType::kStats:
      handle_stats(conn, frame);
      break;
    case MsgType::kMetrics:
      handle_metrics(conn, frame);
      break;
    case MsgType::kMigrateExport:
      handle_migrate_export(conn, frame);
      break;
    case MsgType::kMigrateImport:
      handle_migrate_import(conn, frame);
      break;
    default: {
      counters().protocol_errors.inc();
      conn->send(static_cast<std::uint16_t>(MsgType::kError),
                 encode_error({std::string("unexpected message type ") +
                               std::to_string(frame.type)}));
      conn->close_async();
      break;
    }
  }
}

void Server::handle_hello(const Reactor::ConnPtr& conn, const CtxPtr& ctx,
                          const net::Frame& frame) {
  const auto fail = [&](const char* why) {
    counters().protocol_errors.inc();
    conn->send(static_cast<std::uint16_t>(MsgType::kError),
               encode_error({why}));
    conn->close_async();
  };
  if (frame.type != static_cast<std::uint16_t>(MsgType::kHello)) {
    return fail("expected hello");
  }
  const auto hello = decode_hello(frame.payload);
  if (!hello.has_value() || hello->version != kProtocolVersion) {
    return fail("unsupported protocol version");
  }
  ctx->owner = hello->owner;
  // A replay session needs a nonzero nonce: without one the dedup key
  // cannot distinguish client process lifetimes, and serving a cached
  // reply to a fresh process reusing old identities would be wrong.
  ctx->session = hello->session;
  ctx->replay = hello->session != 0 && hello->replay;
  register_session(*ctx);
  ctx->state.store(ConnCtx::State::kServing);
  HelloOkMsg ok;
  ok.inflight_limit = static_cast<std::uint32_t>(options_.inflight_limit);
  ok.deadline_micros =
      static_cast<std::uint64_t>(options_.request_deadline.micros());
  ok.argument_batching = backend_.options().optimizations.argument_batching;
  if (!conn->send(static_cast<std::uint16_t>(MsgType::kHelloOk),
                  encode_hello_ok(ok))) {
    conn->close_async();
  }
}

void Server::send_completion_error(const Reactor::ConnPtr& conn,
                                   std::uint64_t request_id,
                                   const std::string& error) {
  consolidate::CompletionReply reply;
  reply.ok = false;
  reply.error = error;
  reply.request_id = request_id;
  conn->send(static_cast<std::uint16_t>(MsgType::kCompletion),
             encode_completion(reply));
}

void Server::handle_launch(const Reactor::ConnPtr& conn, const CtxPtr& ctx,
                           const net::Frame& frame) {
  auto req = decode_launch(frame.payload);
  if (!req.has_value()) {
    counters().protocol_errors.inc();
    conn->send(static_cast<std::uint16_t>(MsgType::kError),
               encode_error({"malformed launch"}));
    conn->close_async();
    return;
  }
  const std::uint64_t id = req->request_id;
  const std::string req_owner = req->owner;
  // Every span/instant recorded while handling this launch inherits the
  // wire's distributed-trace context (0/0 = none, a no-op).
  obs::TraceScope trace_scope(req->trace_id, req->parent_span_id);
  if (auto a = fault::hit("server.admit");
      a.kind == fault::ActionKind::kStall ||
      a.kind == fault::ActionKind::kDelay) {
    fault::sleep_for(a.duration);
  }
  if (draining_.load()) {
    send_completion_error(conn, id, "server draining");
    counters().rejected.inc();
    return;
  }

  const auto make_deadline = [&] {
    std::optional<std::chrono::steady_clock::time_point> deadline;
    if (options_.request_deadline > common::Duration::zero()) {
      deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(
                  options_.request_deadline.seconds()));
    }
    return deadline;
  };

  // Replay dedup: a reconnecting client resends every unanswered launch.
  // An already-answered one is served from its session's completed log;
  // one still in the backend has its route re-pointed at this connection —
  // never re-forwarded, so it executes exactly once and batch output stays
  // bit-identical. Both lookups are scoped by the session nonce, so a
  // fresh client process reusing the same owner names and request ids can
  // never be answered from a previous process's state.
  std::optional<consolidate::CompletionReply> cached;
  bool inflight_replay = false;
  {
    std::lock_guard lock(route_mu_);
    if (ctx->replay) {
      const auto sess = sessions_.find(ctx->session);
      if (sess != sessions_.end()) {
        const auto hit = sess->second.replies.find(id);
        if (hit != sess->second.replies.end()) cached = hit->second;
      }
    }
    if (!cached.has_value()) {
      const auto route =
          routes_.find(RequestKey{ctx->session, req_owner, id});
      if (route != routes_.end()) {
        const auto current = route->second.ctx.lock();
        if (current == nullptr || current.get() != ctx.get()) {
          route->second.ctx = ctx;
          inflight_replay = true;
        }
        // Same live connection: fall through to admission, which rejects
        // the duplicate id.
      }
    }
  }
  if (cached.has_value()) {
    counters().replayed_requests.inc();
    if (conn->send(static_cast<std::uint16_t>(MsgType::kCompletion),
                   encode_completion(*cached))) {
      counters().replies.inc();
    }
    obs::instant("server.replay", id,
                 "\"owner\":\"" + obs::json_escape(req_owner) +
                     "\",\"from\":\"completed\"");
    return;
  }
  if (inflight_replay) {
    {
      std::lock_guard lock(ctx->mu);
      ctx->outstanding.emplace(
          id, Outstanding{req_owner, make_deadline(), obs::Tracer::now_us(),
                          req->trace_id, req->parent_span_id});
    }
    counters().replayed_requests.inc();
    obs::instant("server.replay", id,
                 "\"owner\":\"" + obs::json_escape(req_owner) +
                     "\",\"from\":\"inflight\"");
    return;
  }

  // Admission control: bounded unanswered launches per client.
  bool admitted = false;
  const double admitted_at_us = obs::Tracer::now_us();
  {
    std::lock_guard lock(ctx->mu);
    if (static_cast<int>(ctx->outstanding.size()) < options_.inflight_limit) {
      admitted = ctx->outstanding
                     .emplace(id, Outstanding{req_owner, make_deadline(),
                                              admitted_at_us, req->trace_id,
                                              req->parent_span_id})
                     .second;
    }
  }
  if (!admitted) {
    send_completion_error(
        conn, id,
        "rejected: in-flight limit (" +
            std::to_string(options_.inflight_limit) +
            ") exceeded or duplicate request id");
    counters().rejected.inc();
    obs::instant("server.reject", id);
    return;
  }
  req->reply = backend_replies_;
  req->session = ctx->session;
  {
    std::lock_guard lock(route_mu_);
    routes_[RequestKey{ctx->session, req_owner, id}] =
        Route{ctx, req->trace_id, req->parent_span_id, admitted_at_us};
  }
  if (!backend_.channel().send(std::move(*req))) {
    {
      std::lock_guard lock(ctx->mu);
      ctx->outstanding.erase(id);
    }
    {
      std::lock_guard lock(route_mu_);
      routes_.erase(RequestKey{ctx->session, req_owner, id});
    }
    send_completion_error(conn, id, "backend unavailable");
    counters().rejected.inc();
    return;
  }
  counters().requests.inc();
  counters().admitted.inc();
  obs::instant("server.admit", id,
               "\"owner\":\"" + obs::json_escape(ctx->owner) + "\"");
}

void Server::handle_flush(const Reactor::ConnPtr& conn,
                          const net::Frame& frame) {
  const auto flush = decode_flush(frame.payload);
  if (!flush.has_value()) {
    counters().protocol_errors.inc();
    conn->send(static_cast<std::uint16_t>(MsgType::kError),
               encode_error({"malformed flush"}));
    conn->close_async();
    return;
  }
  counters().flushes.inc();
  auto done = std::make_shared<common::Channel<bool>>();
  FlushDoneMsg reply{flush->token, false};
  if (backend_.channel().send(consolidate::FlushRequest{done})) {
    // Blocks this pump worker (bounded by drain_timeout); the pool keeps
    // other connections moving meanwhile.
    reply.ok = done->receive_for(options_.drain_timeout).has_value();
  }
  conn->send(static_cast<std::uint16_t>(MsgType::kFlushDone),
             encode_flush_done(reply));
}

void Server::handle_stats(const Reactor::ConnPtr& conn,
                          const net::Frame& frame) {
  const auto stats = decode_stats(frame.payload);
  if (!stats.has_value()) {
    counters().protocol_errors.inc();
    conn->send(static_cast<std::uint16_t>(MsgType::kError),
               encode_error({"malformed stats"}));
    conn->close_async();
    return;
  }
  counters().stats_requests.inc();
  StatsReplyMsg reply;
  reply.token = stats->token;
  reply.uptime_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started_at_)
          .count());
  reply.counters = trace::Counters::instance().snapshot();
  if (stats->include_histograms) {
    reply.histograms = obs::HistogramRegistry::instance().snapshot_all();
  }
  conn->send(static_cast<std::uint16_t>(MsgType::kStatsReply),
             encode_stats_reply(reply));
}

void Server::handle_metrics(const Reactor::ConnPtr& conn,
                            const net::Frame& frame) {
  const auto metrics = decode_metrics(frame.payload);
  if (!metrics.has_value()) {
    counters().protocol_errors.inc();
    conn->send(static_cast<std::uint16_t>(MsgType::kError),
               encode_error({"malformed metrics"}));
    conn->close_async();
    return;
  }
  counters().metrics_requests.inc();
  MetricsReplyMsg reply;
  reply.token = metrics->token;
  reply.uptime_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started_at_)
          .count());
  if (sampler_ != nullptr) {
    // Take a fresh sample so a one-shot scrape reads values as of *now*,
    // not up to one tick stale (end-of-run accounting cares).
    sampler_->sample_now();
    reply.interval_seconds = options_.metrics_interval;
    reply.series = sampler_->snapshot();
  }
  if (metrics->include_prometheus) {
    // Counters plus the sampler's newest derived values in one scrape; the
    // derived names (rps, p95_seconds, ...) never collide with the dotted
    // counter namespace.
    std::map<std::string, double> values =
        trace::Counters::instance().snapshot();
    if (sampler_ != nullptr) {
      for (const auto& [name, value] : sampler_->last_values()) {
        values[name] = value;
      }
    }
    reply.prometheus_text = obs::prom::render_exposition(values);
  }
  conn->send(static_cast<std::uint16_t>(MsgType::kMetricsReply),
             encode_metrics_reply(reply));
}

void Server::handle_migrate_export(const Reactor::ConnPtr& conn,
                                   const net::Frame& frame) {
  const auto req = decode_migrate_export(frame.payload);
  if (!req.has_value()) {
    counters().protocol_errors.inc();
    conn->send(static_cast<std::uint16_t>(MsgType::kError),
               encode_error({"malformed migrate export"}));
    conn->close_async();
    return;
  }
  MigrateExportReplyMsg reply;
  reply.token = req->token;
  if (auto a = fault::hit("server.migrate")) {
    if (a.kind == fault::ActionKind::kStall ||
        a.kind == fault::ActionKind::kDelay) {
      fault::sleep_for(a.duration);
    } else if (a.kind == fault::ActionKind::kClose) {
      // Torn export: the socket dies mid-handoff. Nothing was mutated yet,
      // so the source stays authoritative.
      conn->close_async();
      return;
    } else {
      reply.error = "injected fault";
      counters().migrate_refusals.inc();
      conn->send(static_cast<std::uint16_t>(MsgType::kMigrateExportReply),
                 encode_migrate_export_reply(reply));
      return;
    }
  }
  {
    std::lock_guard lock(route_mu_);
    const auto it =
        req->session == 0 ? sessions_.end() : sessions_.find(req->session);
    if (req->commit) {
      // The router acked the import on the target: drop our copy. An
      // already-gone session makes the commit an idempotent no-op.
      if (it != sessions_.end()) sessions_.erase(it);
      reply.ok = true;
      counters().migrate_exports.inc();
    } else if (it == sessions_.end()) {
      reply.error = "unknown session";
      counters().migrate_refusals.inc();
    } else {
      // Refuse while any launch of this session is still in the backend:
      // the completed log alone would not be the whole dedup state.
      const auto route = routes_.lower_bound(RequestKey{req->session, "", 0});
      if (route != routes_.end() &&
          std::get<0>(route->first) == req->session) {
        reply.error = "session busy";
        counters().migrate_refusals.inc();
      } else {
        const SessionState& s = it->second;
        reply.ok = true;
        reply.snapshot.session = req->session;
        reply.snapshot.entries.reserve(s.order.size());
        for (const std::uint64_t id : s.order) {
          const auto hit = s.replies.find(id);
          if (hit == s.replies.end()) continue;
          SessionSnapshot::Entry e;
          e.request_id = id;
          e.owner = hit->second.owner;
          e.ok = hit->second.ok;
          e.error = hit->second.error;
          e.finish_seconds = hit->second.finish_time.seconds();
          e.where = static_cast<std::uint8_t>(hit->second.where);
          reply.snapshot.entries.push_back(std::move(e));
        }
      }
    }
  }
  conn->send(static_cast<std::uint16_t>(MsgType::kMigrateExportReply),
             encode_migrate_export_reply(reply));
}

void Server::handle_migrate_import(const Reactor::ConnPtr& conn,
                                   const net::Frame& frame) {
  const auto req = decode_migrate_import(frame.payload);
  if (!req.has_value()) {
    counters().protocol_errors.inc();
    conn->send(static_cast<std::uint16_t>(MsgType::kError),
               encode_error({"malformed migrate import"}));
    conn->close_async();
    return;
  }
  MigrateImportReplyMsg reply;
  reply.token = req->token;
  if (auto a = fault::hit("server.migrate")) {
    if (a.kind == fault::ActionKind::kStall ||
        a.kind == fault::ActionKind::kDelay) {
      fault::sleep_for(a.duration);
    } else if (a.kind == fault::ActionKind::kClose) {
      conn->close_async();
      return;
    } else {
      reply.error = "injected fault";
      conn->send(static_cast<std::uint16_t>(MsgType::kMigrateImportReply),
                 encode_migrate_import_reply(reply));
      return;
    }
  }
  if (req->snapshot.session == 0) {
    reply.error = "session 0 cannot migrate";
    conn->send(static_cast<std::uint16_t>(MsgType::kMigrateImportReply),
               encode_migrate_import_reply(reply));
    return;
  }
  {
    std::lock_guard lock(route_mu_);
    auto [it, inserted] = sessions_.try_emplace(req->snapshot.session);
    SessionState& s = it->second;
    if (inserted) {
      // No live connection owns this session yet: start the idle clock now
      // so the default-constructed time_point cannot read as "idle since
      // the epoch" and get the import swept on the next tick.
      s.idle_since = std::chrono::steady_clock::now();
    }
    // First write wins, same rule as record_completed_locked: anything this
    // shard already answered for the session keeps its local answer.
    for (const auto& e : req->snapshot.entries) {
      consolidate::CompletionReply r;
      r.request_id = e.request_id;
      r.owner = e.owner;
      r.session = req->snapshot.session;
      r.ok = e.ok;
      r.error = e.error;
      r.finish_time = common::Duration::from_seconds(e.finish_seconds);
      r.where = static_cast<consolidate::CompletionReply::Where>(e.where);
      if (!s.replies.emplace(e.request_id, std::move(r)).second) continue;
      s.order.push_back(e.request_id);
    }
    while (s.order.size() > kCompletedCapPerSession) {
      s.replies.erase(s.order.front());
      s.order.pop_front();
    }
  }
  reply.ok = true;
  counters().migrate_imports.inc();
  conn->send(static_cast<std::uint16_t>(MsgType::kMigrateImportReply),
             encode_migrate_import_reply(reply));
}

void Server::on_close(const Reactor::ConnPtr& conn, CloseReason reason,
                      const std::string& msg) {
  auto ctx = std::static_pointer_cast<ConnCtx>(conn->ctx());
  if (ctx == nullptr) return;
  const auto state = ctx->state.load();
  if (reason == CloseReason::kError || reason == CloseReason::kProtocol) {
    // The stream died uncleanly under the peer: tell it why, best-effort,
    // mirroring the old reader's error reply before teardown.
    counters().protocol_errors.inc();
    conn->send(static_cast<std::uint16_t>(MsgType::kError),
               encode_error({msg.empty() ? "read error" : msg}));
  }
  if (state == ConnCtx::State::kServing) release_session(*ctx);
  if (state != ConnCtx::State::kRejecting) {
    counters().connections_closed.inc();
  }
  ctx->state.store(ConnCtx::State::kClosed);
  std::lock_guard lock(conns_mu_);
  conns_.erase(conn->id());
}

void Server::on_tick() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<CtxPtr> snapshot;
  {
    std::lock_guard lock(conns_mu_);
    snapshot.reserve(conns_.size());
    for (const auto& [id, ctx] : conns_) snapshot.push_back(ctx);
  }
  for (const auto& ctx : snapshot) {
    auto state = ctx->state.load();
    // Handshake timeout: a connection that never sent its hello (or a
    // rejected one that never sent anything) is closed once io_timeout
    // passes — the old blocking-read handshake bound, kept under epoll.
    if ((state == ConnCtx::State::kAwaitHello ||
         state == ConnCtx::State::kRejecting) &&
        now >= ctx->hello_deadline) {
      if (ctx->state.compare_exchange_strong(state,
                                             ConnCtx::State::kClosed)) {
        auto conn = ctx->conn.lock();
        if (conn != nullptr) {
          const bool rejecting = state == ConnCtx::State::kRejecting;
          conn->post([conn, rejecting] {
            if (!rejecting) {
              counters().protocol_errors.inc();
              conn->send(static_cast<std::uint16_t>(MsgType::kError),
                         encode_error({"expected hello"}));
            }
            conn->close_async();
          });
        }
      }
      continue;
    }
    if (state != ConnCtx::State::kServing ||
        options_.request_deadline <= common::Duration::zero()) {
      continue;
    }
    // Per-request deadline sweep (was the per-connection writer's tick).
    std::vector<std::pair<std::uint64_t, std::string>> expired;
    {
      std::lock_guard lock(ctx->mu);
      for (const auto& [id, entry] : ctx->outstanding) {
        if (entry.deadline.has_value() && now >= *entry.deadline) {
          expired.emplace_back(id, entry.owner);
        }
      }
      for (const auto& [id, owner] : expired) ctx->outstanding.erase(id);
    }
    if (expired.empty()) continue;
    auto conn = ctx->conn.lock();
    for (const auto& [id, owner] : expired) {
      // Record the error as this key's answer (and drop the route) so the
      // eventual backend reply is parked, and a replay of the request is
      // told the same thing the client was.
      consolidate::CompletionReply expired_reply;
      expired_reply.ok = false;
      expired_reply.error = "request deadline exceeded";
      expired_reply.request_id = id;
      expired_reply.owner = owner;
      expired_reply.session = ctx->session;
      {
        std::lock_guard lock(route_mu_);
        record_completed_locked(expired_reply);
      }
      counters().deadline_expired.inc();
      obs::instant("server.deadline_expired", id);
      if (conn != nullptr) {
        // The send happens on the connection's serialized pump: the
        // reactor thread must never block on a stuck peer.
        const std::uint64_t rid = id;
        conn->post([this, conn, rid] {
          send_completion_error(conn, rid, "request deadline exceeded");
        });
      }
    }
  }
  std::lock_guard lock(route_mu_);
  sweep_sessions_locked();
}

void Server::record_completed_locked(
    const consolidate::CompletionReply& reply) {
  routes_.erase(RequestKey{reply.session, reply.owner, reply.request_id});
  // Only sessions that negotiated replay have an entry here: one-shot
  // clients' replies are never recorded, so they cost no daemon memory.
  const auto it = sessions_.find(reply.session);
  if (reply.session == 0 || it == sessions_.end()) return;
  SessionState& s = it->second;
  // First write wins: if the sweep already recorded a deadline/drain error
  // for this key, the client was answered with it — a replay must see the
  // same answer, not a different late one.
  if (!s.replies.emplace(reply.request_id, reply).second) return;
  s.order.push_back(reply.request_id);
  while (s.order.size() > kCompletedCapPerSession) {
    s.replies.erase(s.order.front());
    s.order.pop_front();
  }
}

void Server::sweep_sessions_locked() {
  const auto now = std::chrono::steady_clock::now();
  const auto grace =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.replay_grace.seconds()));
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second.live_connections == 0 &&
        now - it->second.idle_since >= grace) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::register_session(const ConnCtx& ctx) {
  if (!ctx.replay) return;
  std::lock_guard lock(route_mu_);
  // Piggyback eviction on hellos: every new client pays a cheap sweep, so
  // stale sessions never outlive the grace window by more than a tick.
  sweep_sessions_locked();
  ++sessions_[ctx.session].live_connections;
}

void Server::release_session(const ConnCtx& ctx) {
  if (!ctx.replay) return;
  std::lock_guard lock(route_mu_);
  const auto it = sessions_.find(ctx.session);
  if (it == sessions_.end()) return;
  if (--it->second.live_connections <= 0) {
    it->second.live_connections = 0;
    it->second.idle_since = std::chrono::steady_clock::now();
  }
}

void Server::demux_loop() {
  for (;;) {
    auto reply = backend_replies_->receive();
    if (!reply.has_value()) break;  // closed and drained: shutting down
    CtxPtr target;
    Route route_info;
    {
      std::lock_guard lock(route_mu_);
      const auto it = routes_.find(
          RequestKey{reply->session, reply->owner, reply->request_id});
      if (it != routes_.end()) {
        route_info = it->second;
        target = route_info.ctx.lock();
      }
      record_completed_locked(*reply);
    }
    bool delivered = false;
    if (target != nullptr) {
      // The connection's serialized pump sends the frame; if the client
      // died in the meantime the post fails and the reply stays parked in
      // the completed log above for a future replay.
      if (auto conn = target->conn.lock()) {
        delivered = conn->post(
            [this, conn, target, r = *reply] {
              deliver_completion(conn, target, r);
            });
      }
    }
    if (!delivered) {
      counters().parked_replies.inc();
      // The connection died before its answer did (a forwarding router
      // crash is the common cause). The work still ran and the parked
      // reply will answer the client's replay, so the request-lifecycle
      // span must not vanish with the connection — emit it here from the
      // route's copy of the trace correlation.
      if (obs::Tracer::enabled() && route_info.trace_id != 0) {
        const double now_us = obs::Tracer::now_us();
        obs::SpanEvent ev;
        ev.name = "server.request";
        ev.ts_us = route_info.admitted_at_us;
        ev.dur_us = now_us - route_info.admitted_at_us;
        ev.request_id = reply->request_id;
        ev.trace_id = route_info.trace_id;
        ev.parent_span_id = route_info.parent_span_id;
        ev.args = std::string("\"ok\":") + (reply->ok ? "true" : "false") +
                  ",\"delivered\":false";
        obs::Tracer::instance().record(std::move(ev));
      }
    }
  }
}

void Server::deliver_completion(const Reactor::ConnPtr& conn,
                                const CtxPtr& ctx,
                                const consolidate::CompletionReply& reply) {
  bool live = false;
  double admitted_at_us = 0.0;
  std::uint64_t trace_id = 0, parent_span_id = 0;
  {
    std::lock_guard lock(ctx->mu);
    auto it = ctx->outstanding.find(reply.request_id);
    if (it != ctx->outstanding.end()) {
      live = true;
      admitted_at_us = it->second.admitted_at_us;
      trace_id = it->second.trace_id;
      parent_span_id = it->second.parent_span_id;
      ctx->outstanding.erase(it);
    }
  }
  // A reply whose id is no longer outstanding already got a deadline /
  // drain error; dropping the late real answer keeps the stream sane.
  if (!live) return;
  bool drop = false;
  if (auto a = fault::hit("server.reply")) {
    if (a.kind == fault::ActionKind::kDelay ||
        a.kind == fault::ActionKind::kStall) {
      fault::sleep_for(a.duration);
    } else if (a.kind == fault::ActionKind::kDrop) {
      // Lost reply: the client's deadline (or its replay after a
      // reconnect — the completed log still has the answer) recovers.
      drop = true;
    }
  }
  bool delivered = false;
  if (!drop && !conn->closing() &&
      conn->send(static_cast<std::uint16_t>(MsgType::kCompletion),
                 encode_completion(reply))) {
    counters().replies.inc();
    delivered = true;
  }
  const double now_us = obs::Tracer::now_us();
  request_latency_hist()->record((now_us - admitted_at_us) * 1e-6);
  if (obs::Tracer::enabled()) {
    // The server-side request-lifecycle span: admission to completion,
    // correlated with the client's launch span by request_id. Emitted even
    // when the reply could not be written back (the forwarding router died
    // first): the work DID run, the completed log holds the answer for the
    // client's replay, and dropping the span would leave a hole in the
    // stitched cross-process trace.
    obs::SpanEvent ev;
    ev.name = "server.request";
    ev.ts_us = admitted_at_us;
    ev.dur_us = now_us - admitted_at_us;
    ev.request_id = reply.request_id;
    ev.trace_id = trace_id;
    ev.parent_span_id = parent_span_id;
    ev.args = std::string("\"ok\":") + (reply.ok ? "true" : "false") +
              ",\"delivered\":" + (delivered ? "true" : "false");
    obs::Tracer::instance().record(std::move(ev));
  }
}

void Server::drain() {
  draining_.store(true);
  // The reactor already closed the listener (unlinking a UNIX socket path).
  std::vector<CtxPtr> snapshot;
  {
    std::lock_guard lock(conns_mu_);
    for (const auto& [id, ctx] : conns_) snapshot.push_back(ctx);
  }

  // Fail outstanding replies with an error (recording the error as each
  // key's final answer so the flushed batch's late replies are parked)...
  for (const auto& ctx : snapshot) {
    std::vector<std::pair<std::uint64_t, std::string>> ids;
    {
      std::lock_guard lock(ctx->mu);
      for (const auto& [id, entry] : ctx->outstanding) {
        ids.emplace_back(id, entry.owner);
      }
      ctx->outstanding.clear();
    }
    auto conn = ctx->conn.lock();
    for (const auto& [id, owner] : ids) {
      consolidate::CompletionReply drained;
      drained.ok = false;
      drained.error = "server draining";
      drained.request_id = id;
      drained.owner = owner;
      drained.session = ctx->session;
      {
        std::lock_guard lock(route_mu_);
        record_completed_locked(drained);
      }
      if (conn != nullptr) {
        send_completion_error(conn, id, "server draining");
      }
      counters().drain_failed_replies.inc();
    }
  }

  // ...and flush the pending batch (its replies were failed above and are
  // dropped; the batch still executes so the backend's reports are
  // complete) bounded by drain_timeout. The reactor closes every
  // connection right after this handler returns.
  auto done = std::make_shared<common::Channel<bool>>();
  if (backend_.channel().send(consolidate::FlushRequest{done})) {
    if (!done->receive_for(options_.drain_timeout).has_value()) {
      common::log_info("ewcd: drain flush timed out");
      counters().drain_flush_timeouts.inc();
    }
  }
}

}  // namespace ewc::server
