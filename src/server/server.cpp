#include "server/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/log.hpp"
#include "fault/injector.hpp"
#include "obs/histogram.hpp"
#include "obs/tracer.hpp"
#include "trace/counters.hpp"

namespace ewc::server {

namespace {

/// Writer wake-up tick: bounds deadline-sweep latency without busy-waiting.
constexpr common::Duration kWriterTick = common::Duration::from_millis(50.0);

/// The daemon's counters, resolved to atomic cells once: the reader/writer
/// loops bump these per frame, so each hit is one relaxed atomic add with no
/// registry lock. The `server.*` namespace is documented in docs/SERVER.md.
struct ServerCounters {
  trace::Counters::Handle connections_accepted, connections_rejected,
      connections_closed, protocol_errors, admitted, rejected, requests,
      replies, flushes, shutdown_requests, stats_requests, deadline_expired,
      drain_failed_replies, drain_flush_timeouts, replayed_requests,
      parked_replies, accept_backoff;
};

ServerCounters& counters() {
  auto h = [](const char* n) {
    return trace::Counters::instance().handle(n);
  };
  static ServerCounters* s = new ServerCounters{
      h("server.connections.accepted"), h("server.connections.rejected"),
      h("server.connections.closed"),   h("server.protocol_errors"),
      h("server.admitted"),             h("server.rejected"),
      h("server.requests"),             h("server.replies"),
      h("server.flushes"),              h("server.shutdown_requests"),
      h("server.stats_requests"),       h("server.deadline_expired"),
      h("server.drain.failed_replies"), h("server.drain.flush_timeouts"),
      h("server.replayed_requests"),    h("server.parked_replies"),
      h("server.accept_backoff")};
  return *s;
}

obs::Histogram* request_latency_hist() {
  static obs::Histogram* hist = obs::HistogramRegistry::instance().get(
      "server.request_latency_seconds");
  return hist;
}

}  // namespace

Server::Server(consolidate::Backend& backend, ServerOptions options)
    : backend_(backend), options_(std::move(options)) {}

Server::~Server() {
  if (running_.load()) stop();
  if (acceptor_.joinable()) acceptor_.join();
  backend_replies_->close();
  if (demux_.joinable()) demux_.join();
  for (int fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

bool Server::start(std::string* error) {
  if (running_.load()) {
    if (error) *error = "server already running";
    return false;
  }
  if (::pipe(stop_pipe_) != 0) {
    if (error) *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  ::fcntl(stop_pipe_[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(stop_pipe_[1], F_SETFD, FD_CLOEXEC);
  auto listener = net::Listener::bind_unix(options_.socket_path,
                                           /*backlog=*/128, error);
  if (!listener.has_value()) return false;
  listener_ = std::move(*listener);
  {
    std::lock_guard lock(stopped_mu_);
    stopped_ = false;
  }
  running_.store(true);
  started_at_ = std::chrono::steady_clock::now();
  demux_ = std::thread([this] { demux_loop(); });
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::notify_stop() {
  if (stop_pipe_[1] >= 0) {
    const char byte = 's';
    // Async-signal-safe; a full pipe means a stop is already pending.
    [[maybe_unused]] ssize_t rc = ::write(stop_pipe_[1], &byte, 1);
  }
}

void Server::wait() {
  std::unique_lock lock(stopped_mu_);
  stopped_cv_.wait(lock, [&] { return stopped_; });
}

void Server::stop() {
  notify_stop();
  wait();
}

int Server::active_connections() const {
  std::lock_guard lock(conns_mu_);
  int n = 0;
  for (const auto& c : conns_) {
    if (!c->reader_done.load()) ++n;
  }
  return n;
}

void Server::accept_loop() {
  // Capped exponential backoff for transient accept failures (fd
  // exhaustion). The pending connection keeps the listener readable, so
  // without a pause this loop would spin at 100% CPU while contributing
  // nothing; with one it rides out the pressure until closes free fds.
  int backoff_ms = 0;
  constexpr int kAcceptBackoffFloorMs = 1;
  constexpr int kAcceptBackoffCapMs = 100;
  for (;;) {
    reap_finished();
    {
      std::lock_guard lock(route_mu_);
      sweep_sessions_locked();
    }
    pollfd fds[2] = {{listener_->fd(), POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      common::log_info("ewcd: poll failed, draining");
      break;
    }
    if (fds[1].revents != 0) break;  // stop requested
    if (fds[0].revents == 0) continue;

    std::string err;
    net::IoStatus status;
    auto sock = listener_->accept(net::Deadline::after(common::Duration::zero()),
                                  &status, &err);
    if (!sock.has_value()) {
      if (status == net::IoStatus::kTransient) {
        backoff_ms = std::min(std::max(backoff_ms * 2, kAcceptBackoffFloorMs),
                              kAcceptBackoffCapMs);
        counters().accept_backoff.inc();
        common::log_info("ewcd: accept backoff " +
                         std::to_string(backoff_ms) + "ms: " + err);
        // Sleep on the stop pipe so shutdown is not delayed by the backoff.
        pollfd stop_fd{stop_pipe_[0], POLLIN, 0};
        if (::poll(&stop_fd, 1, backoff_ms) > 0 && stop_fd.revents != 0) {
          break;
        }
      } else if (status == net::IoStatus::kError) {
        common::log_info("ewcd: accept failed: " + err);
      }
      continue;
    }
    backoff_ms = 0;
    if (active_connections() >= options_.max_clients) {
      // Turn the connection away explicitly rather than letting it hang.
      // Consume the client's hello first so the rejection is ordered after
      // its send: closing before the hello arrives would RST the socket and
      // the client could lose the error frame instead of reading it.
      net::Frame hello_frame;
      net::read_frame(*sock, &hello_frame,
                      net::Deadline::after(options_.io_timeout), nullptr);
      const auto payload = encode_error({"server full"});
      net::write_frame(*sock, static_cast<std::uint16_t>(MsgType::kError),
                       payload, net::Deadline::after(options_.io_timeout),
                       nullptr);
      counters().connections_rejected.inc();
      continue;
    }

    auto conn = std::make_shared<Connection>();
    conn->sock = std::move(*sock);
    {
      std::lock_guard lock(conns_mu_);
      conn->id = next_conn_id_++;
      conns_.push_back(conn);
    }
    counters().connections_accepted.inc();
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
    conn->writer = std::thread([this, conn] { writer_loop(conn); });
  }
  drain();
  running_.store(false);
  {
    std::lock_guard lock(stopped_mu_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void Server::reap_finished() {
  std::lock_guard lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    auto& c = *it;
    if (c->reader_done.load() && c->writer_done.load()) {
      if (c->reader.joinable()) c->reader.join();
      if (c->writer.joinable()) c->writer.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::record_completed_locked(
    const consolidate::CompletionReply& reply) {
  routes_.erase(RequestKey{reply.session, reply.owner, reply.request_id});
  // Only sessions that negotiated replay have an entry here: one-shot
  // clients' replies are never recorded, so they cost no daemon memory.
  const auto it = sessions_.find(reply.session);
  if (reply.session == 0 || it == sessions_.end()) return;
  SessionState& s = it->second;
  // First write wins: if the writer already recorded a deadline/drain error
  // for this key, the client was answered with it — a replay must see the
  // same answer, not a different late one.
  if (!s.replies.emplace(reply.request_id, reply).second) return;
  s.order.push_back(reply.request_id);
  while (s.order.size() > kCompletedCapPerSession) {
    s.replies.erase(s.order.front());
    s.order.pop_front();
  }
}

void Server::sweep_sessions_locked() {
  const auto now = std::chrono::steady_clock::now();
  const auto grace =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.replay_grace.seconds()));
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second.live_connections == 0 &&
        now - it->second.idle_since >= grace) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::register_session(const Connection& conn) {
  if (!conn.replay) return;
  std::lock_guard lock(route_mu_);
  // Piggyback eviction on hellos: every new client pays a cheap sweep, so
  // stale sessions never outlive the grace window by more than the gap to
  // the next connection (the accept loop sweeps on its wakeups too).
  sweep_sessions_locked();
  ++sessions_[conn.session].live_connections;
}

void Server::release_session(const Connection& conn) {
  if (!conn.replay) return;
  std::lock_guard lock(route_mu_);
  const auto it = sessions_.find(conn.session);
  if (it == sessions_.end()) return;
  if (--it->second.live_connections <= 0) {
    it->second.live_connections = 0;
    it->second.idle_since = std::chrono::steady_clock::now();
  }
}

void Server::demux_loop() {
  for (;;) {
    auto reply = backend_replies_->receive();
    if (!reply.has_value()) break;  // closed and drained: shutting down
    std::shared_ptr<Connection> target;
    {
      std::lock_guard lock(route_mu_);
      const auto it = routes_.find(
          RequestKey{reply->session, reply->owner, reply->request_id});
      if (it != routes_.end()) target = it->second.lock();
      record_completed_locked(*reply);
    }
    if (target != nullptr) {
      // The connection's writer sends the frame; if the client died in the
      // meantime the send is a dropped no-op and the reply stays parked in
      // the completed log above for a future replay.
      if (!target->replies->send(*reply)) counters().parked_replies.inc();
    } else {
      // No live route: client gone (or already answered by deadline expiry).
      counters().parked_replies.inc();
    }
  }
}

bool Server::send_frame(Connection& conn, MsgType type,
                        std::span<const std::byte> payload) {
  std::lock_guard lock(conn.write_mu);
  std::string err;
  const auto s = net::write_frame(conn.sock,
                                  static_cast<std::uint16_t>(type), payload,
                                  net::Deadline::after(options_.io_timeout),
                                  &err);
  if (s != net::IoStatus::kOk) {
    conn.closing.store(true);
    return false;
  }
  return true;
}

void Server::send_completion_error(Connection& conn, std::uint64_t request_id,
                                   const std::string& error) {
  consolidate::CompletionReply reply;
  reply.ok = false;
  reply.error = error;
  reply.request_id = request_id;
  send_frame(conn, MsgType::kCompletion, encode_completion(reply));
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
  const auto teardown = [&] {
    conn->closing.store(true);
    // Closing the reply channel wakes the writer so it drains and exits.
    // Replies still in flight for this client are parked by the demux in
    // the session's completed log (the route's weak_ptr expires with the
    // conn): a dead client loses only its own replies, and a reconnecting
    // one can still replay-claim them within the replay grace window.
    conn->replies->close();
    conn->sock.shutdown_rw();
    release_session(*conn);
    conn->reader_done.store(true);
    counters().connections_closed.inc();
  };

  // ---- handshake ----
  net::Frame frame;
  std::string err;
  auto s = net::read_frame(conn->sock, &frame,
                           net::Deadline::after(options_.io_timeout), &err);
  if (s != net::IoStatus::kOk ||
      frame.type != static_cast<std::uint16_t>(MsgType::kHello)) {
    counters().protocol_errors.inc();
    send_frame(*conn, MsgType::kError, encode_error({"expected hello"}));
    return teardown();
  }
  const auto hello = decode_hello(frame.payload);
  if (!hello.has_value() || hello->version != kProtocolVersion) {
    counters().protocol_errors.inc();
    send_frame(*conn, MsgType::kError,
               encode_error({"unsupported protocol version"}));
    return teardown();
  }
  conn->owner = hello->owner;
  // A replay session needs a nonzero nonce: without one the dedup key
  // cannot distinguish client process lifetimes, and serving a cached
  // reply to a fresh process reusing old identities would be wrong.
  conn->session = hello->session;
  conn->replay = hello->session != 0 && hello->replay;
  register_session(*conn);
  HelloOkMsg ok;
  ok.inflight_limit = static_cast<std::uint32_t>(options_.inflight_limit);
  ok.deadline_micros =
      static_cast<std::uint64_t>(options_.request_deadline.micros());
  ok.argument_batching = backend_.options().optimizations.argument_batching;
  if (!send_frame(*conn, MsgType::kHelloOk, encode_hello_ok(ok))) {
    return teardown();
  }

  // ---- request loop ----
  for (;;) {
    s = net::read_frame(conn->sock, &frame, net::Deadline::never(), &err);
    if (s == net::IoStatus::kEof) break;  // clean close
    if (s != net::IoStatus::kOk) {
      if (!conn->closing.load()) {
        counters().protocol_errors.inc();
        send_frame(*conn, MsgType::kError, encode_error({err}));
      }
      break;
    }
    switch (static_cast<MsgType>(frame.type)) {
      case MsgType::kLaunch: {
        auto req = decode_launch(frame.payload);
        if (!req.has_value()) {
          counters().protocol_errors.inc();
          send_frame(*conn, MsgType::kError,
                     encode_error({"malformed launch"}));
          return teardown();
        }
        const std::uint64_t id = req->request_id;
        const std::string req_owner = req->owner;
        if (auto a = fault::hit("server.admit");
            a.kind == fault::ActionKind::kStall ||
            a.kind == fault::ActionKind::kDelay) {
          fault::sleep_for(a.duration);
        }
        if (draining_.load()) {
          send_completion_error(*conn, id, "server draining");
          counters().rejected.inc();
          break;
        }

        const auto make_deadline = [&] {
          std::optional<std::chrono::steady_clock::time_point> deadline;
          if (options_.request_deadline > common::Duration::zero()) {
            deadline =
                std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(
                        options_.request_deadline.seconds()));
          }
          return deadline;
        };

        // Replay dedup: a reconnecting client resends every unanswered
        // launch. An already-answered one is served from its session's
        // completed log; one still in the backend has its route re-pointed
        // at this connection — never re-forwarded, so it executes exactly
        // once and batch output stays bit-identical. Both lookups are
        // scoped by the session nonce, so a fresh client process reusing
        // the same owner names and request ids can never be answered from
        // a previous process's state.
        std::optional<consolidate::CompletionReply> cached;
        bool inflight_replay = false;
        {
          std::lock_guard lock(route_mu_);
          if (conn->replay) {
            const auto sess = sessions_.find(conn->session);
            if (sess != sessions_.end()) {
              const auto hit = sess->second.replies.find(id);
              if (hit != sess->second.replies.end()) cached = hit->second;
            }
          }
          if (!cached.has_value()) {
            const auto route =
                routes_.find(RequestKey{conn->session, req_owner, id});
            if (route != routes_.end()) {
              const auto current = route->second.lock();
              if (current == nullptr || current.get() != conn.get()) {
                route->second = conn;
                inflight_replay = true;
              }
              // Same live connection: fall through to admission, which
              // rejects the duplicate id.
            }
          }
        }
        if (cached.has_value()) {
          counters().replayed_requests.inc();
          if (send_frame(*conn, MsgType::kCompletion,
                         encode_completion(*cached))) {
            counters().replies.inc();
          }
          obs::instant("server.replay", id,
                       "\"owner\":\"" + obs::json_escape(req_owner) +
                           "\",\"from\":\"completed\"");
          break;
        }
        if (inflight_replay) {
          {
            std::lock_guard lock(conn->mu);
            conn->outstanding.emplace(
                id, Connection::Outstanding{req_owner, make_deadline(),
                                            obs::Tracer::now_us()});
          }
          counters().replayed_requests.inc();
          obs::instant("server.replay", id,
                       "\"owner\":\"" + obs::json_escape(req_owner) +
                           "\",\"from\":\"inflight\"");
          break;
        }

        // Admission control: bounded unanswered launches per client.
        bool admitted = false;
        {
          std::lock_guard lock(conn->mu);
          if (static_cast<int>(conn->outstanding.size()) <
              options_.inflight_limit) {
            admitted = conn->outstanding
                           .emplace(id, Connection::Outstanding{
                                            req_owner, make_deadline(),
                                            obs::Tracer::now_us()})
                           .second;
          }
        }
        if (!admitted) {
          send_completion_error(
              *conn, id,
              "rejected: in-flight limit (" +
                  std::to_string(options_.inflight_limit) +
                  ") exceeded or duplicate request id");
          counters().rejected.inc();
          obs::instant("server.reject", id);
          break;
        }
        req->reply = backend_replies_;
        req->session = conn->session;
        {
          std::lock_guard lock(route_mu_);
          routes_[RequestKey{conn->session, req_owner, id}] = conn;
        }
        if (!backend_.channel().send(std::move(*req))) {
          {
            std::lock_guard lock(conn->mu);
            conn->outstanding.erase(id);
          }
          {
            std::lock_guard lock(route_mu_);
            routes_.erase(RequestKey{conn->session, req_owner, id});
          }
          send_completion_error(*conn, id, "backend unavailable");
          counters().rejected.inc();
          break;
        }
        counters().requests.inc();
        counters().admitted.inc();
        obs::instant("server.admit", id,
                     "\"owner\":\"" + obs::json_escape(conn->owner) + "\"");
        break;
      }
      case MsgType::kFlush: {
        const auto flush = decode_flush(frame.payload);
        if (!flush.has_value()) {
          counters().protocol_errors.inc();
          send_frame(*conn, MsgType::kError, encode_error({"malformed flush"}));
          return teardown();
        }
        counters().flushes.inc();
        auto done = std::make_shared<common::Channel<bool>>();
        FlushDoneMsg reply{flush->token, false};
        if (backend_.channel().send(consolidate::FlushRequest{done})) {
          reply.ok = done->receive_for(options_.drain_timeout).has_value();
        }
        send_frame(*conn, MsgType::kFlushDone, encode_flush_done(reply));
        break;
      }
      case MsgType::kShutdown: {
        counters().shutdown_requests.inc();
        notify_stop();
        break;
      }
      case MsgType::kStats: {
        const auto stats = decode_stats(frame.payload);
        if (!stats.has_value()) {
          counters().protocol_errors.inc();
          send_frame(*conn, MsgType::kError, encode_error({"malformed stats"}));
          return teardown();
        }
        counters().stats_requests.inc();
        StatsReplyMsg reply;
        reply.token = stats->token;
        reply.uptime_micros = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - started_at_)
                .count());
        reply.counters = trace::Counters::instance().snapshot();
        if (stats->include_histograms) {
          reply.histograms = obs::HistogramRegistry::instance().snapshot_all();
        }
        send_frame(*conn, MsgType::kStatsReply, encode_stats_reply(reply));
        break;
      }
      default: {
        counters().protocol_errors.inc();
        send_frame(*conn, MsgType::kError,
                   encode_error({std::string("unexpected message type ") +
                                 std::to_string(frame.type)}));
        return teardown();
      }
    }
  }
  teardown();
}

void Server::writer_loop(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    auto reply = conn->replies->receive_for(kWriterTick);
    if (reply.has_value()) {
      bool live = false;
      double admitted_at_us = 0.0;
      {
        std::lock_guard lock(conn->mu);
        auto it = conn->outstanding.find(reply->request_id);
        if (it != conn->outstanding.end()) {
          live = true;
          admitted_at_us = it->second.admitted_at_us;
          conn->outstanding.erase(it);
        }
      }
      // A reply whose id is no longer outstanding already got a deadline /
      // drain error; dropping the late real answer keeps the stream sane.
      if (live && !conn->closing.load()) {
        if (auto a = fault::hit("server.reply")) {
          if (a.kind == fault::ActionKind::kDelay ||
              a.kind == fault::ActionKind::kStall) {
            fault::sleep_for(a.duration);
          } else if (a.kind == fault::ActionKind::kDrop) {
            // Lost reply: the client's deadline (or its replay after a
            // reconnect — the completed log still has the answer) recovers.
            continue;
          }
        }
        send_frame(*conn, MsgType::kCompletion, encode_completion(*reply));
        counters().replies.inc();
        const double now_us = obs::Tracer::now_us();
        request_latency_hist()->record((now_us - admitted_at_us) * 1e-6);
        if (obs::Tracer::enabled()) {
          // The server-side request-lifecycle span: admission to reply
          // write, correlated with the client's launch span by request_id.
          obs::SpanEvent ev;
          ev.name = "server.request";
          ev.ts_us = admitted_at_us;
          ev.dur_us = now_us - admitted_at_us;
          ev.request_id = reply->request_id;
          ev.args = std::string("\"ok\":") + (reply->ok ? "true" : "false");
          obs::Tracer::instance().record(std::move(ev));
        }
      }
    }

    if (options_.request_deadline > common::Duration::zero() &&
        !conn->closing.load()) {
      const auto now = std::chrono::steady_clock::now();
      std::vector<std::pair<std::uint64_t, std::string>> expired;
      {
        std::lock_guard lock(conn->mu);
        for (const auto& [id, entry] : conn->outstanding) {
          if (entry.deadline.has_value() && now >= *entry.deadline) {
            expired.emplace_back(id, entry.owner);
          }
        }
        for (const auto& [id, owner] : expired) conn->outstanding.erase(id);
      }
      for (const auto& [id, owner] : expired) {
        // Record the error as this key's answer (and drop the route) so the
        // eventual backend reply is parked, and a replay of the request is
        // told the same thing the client was.
        consolidate::CompletionReply expired_reply;
        expired_reply.ok = false;
        expired_reply.error = "request deadline exceeded";
        expired_reply.request_id = id;
        expired_reply.owner = owner;
        expired_reply.session = conn->session;
        {
          std::lock_guard lock(route_mu_);
          record_completed_locked(expired_reply);
        }
        send_completion_error(*conn, id, "request deadline exceeded");
        counters().deadline_expired.inc();
        obs::instant("server.deadline_expired", id);
      }
    }

    if (conn->replies->closed() && !reply.has_value()) break;
  }
  conn->writer_done.store(true);
}

void Server::drain() {
  draining_.store(true);
  listener_->close();  // stop accepting; unlinks the socket path

  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard lock(conns_mu_);
    conns = conns_;
  }

  // Fail outstanding replies with an error (recording the error as each
  // key's final answer so the flushed batch's late replies are parked)...
  for (auto& conn : conns) {
    std::vector<std::pair<std::uint64_t, std::string>> ids;
    {
      std::lock_guard lock(conn->mu);
      for (const auto& [id, entry] : conn->outstanding) {
        ids.emplace_back(id, entry.owner);
      }
      conn->outstanding.clear();
    }
    for (const auto& [id, owner] : ids) {
      consolidate::CompletionReply drained;
      drained.ok = false;
      drained.error = "server draining";
      drained.request_id = id;
      drained.owner = owner;
      drained.session = conn->session;
      {
        std::lock_guard lock(route_mu_);
        record_completed_locked(drained);
      }
      send_completion_error(*conn, id, "server draining");
      counters().drain_failed_replies.inc();
    }
  }

  // ...flush the pending batch (its replies were failed above and are
  // dropped; the batch still executes so the backend's reports are complete)
  // bounded by drain_timeout...
  auto done = std::make_shared<common::Channel<bool>>();
  if (backend_.channel().send(consolidate::FlushRequest{done})) {
    if (!done->receive_for(options_.drain_timeout).has_value()) {
      common::log_info("ewcd: drain flush timed out");
      counters().drain_flush_timeouts.inc();
    }
  }

  // ...and close every connection.
  for (auto& conn : conns) {
    conn->closing.store(true);
    conn->replies->close();
    conn->sock.shutdown_rw();
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
  {
    std::lock_guard lock(conns_mu_);
    conns_.clear();
  }
}

}  // namespace ewc::server
