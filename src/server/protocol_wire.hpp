// Wire codecs for the ewcd protocol: the consolidate protocol messages
// (LaunchRequest / CompletionReply / FlushRequest / ShutdownRequest) plus
// gpusim::KernelDesc, encoded with net::Writer into net frames.
//
// The encoding is versioned through the hello handshake: a client opens with
// kHello{version, owner}; the server answers kHelloOk carrying its limits
// and the backend's argument-batching setting (so a RemoteFrontend counts
// API messages exactly like the in-process Frontend would). Field order is
// part of the protocol — see docs/SERVER.md for the byte-level layout.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "consolidate/protocol.hpp"
#include "gpusim/kernel_desc.hpp"
#include "net/wire.hpp"
#include "obs/histogram.hpp"
#include "obs/timeseries.hpp"

namespace ewc::server {

inline constexpr std::uint32_t kProtocolVersion = 1;

/// Frame types (net::Frame::type).
enum class MsgType : std::uint16_t {
  kHello = 1,       ///< client -> server: version + owner
  kHelloOk = 2,     ///< server -> client: limits + backend settings
  kLaunch = 3,      ///< client -> server: one LaunchRequest
  kCompletion = 4,  ///< server -> client: one CompletionReply
  kFlush = 5,       ///< client -> server: process everything pending
  kFlushDone = 6,   ///< server -> client: flush finished
  kShutdown = 7,    ///< client -> server: ask the daemon to drain and exit
  kError = 8,       ///< server -> client: fatal protocol error, then close
  // Additive extension (still protocol version 1): a version-1 server that
  // predates it answers kStats with kError, which stats clients must accept.
  kStats = 9,       ///< client -> server: snapshot counters (+ histograms)
  kStatsReply = 10, ///< server -> client: the snapshot
  // Additive extension (still protocol version 1), same contract as kStats:
  // older servers answer with kError, which metrics clients must accept.
  kMetrics = 11,      ///< client -> server: time-series rings (+ Prometheus)
  kMetricsReply = 12, ///< server -> client: the series
  // Additive extension (still protocol version 1): live session migration.
  // The router exports a session's authoritative replay state from one
  // shard and imports it into another; a pre-migration server answers both
  // with kError, which the router treats as "shard cannot migrate".
  kMigrateExport = 13,       ///< router -> shard: snapshot (or commit) one session
  kMigrateExportReply = 14,  ///< shard -> router: the snapshot / refusal
  kMigrateImport = 15,       ///< router -> shard: install a session snapshot
  kMigrateImportReply = 16,  ///< shard -> router: import ack
  // Additive extension (still protocol version 1): router active/standby
  // state sync. A standby router pulls the primary's placement table and
  // shard health so a takeover starts from the primary's fleet view.
  kSyncPull = 17,   ///< standby router -> primary: pull the fleet state
  kSyncState = 18,  ///< primary -> standby: the state snapshot
};

const char* msg_type_name(MsgType t);

struct HelloMsg {
  std::uint32_t version = kProtocolVersion;
  std::string owner;
  /// Session nonce (additive field, still protocol version 1; 0 = none).
  /// Generated once per client process/connection object and reused
  /// verbatim across reconnect handshakes, it scopes the server's replay
  /// routing and dedup state: a fresh process that happens to reuse the
  /// same owner names and request ids can never be answered from a
  /// previous process's cached replies.
  std::uint64_t session = 0;
  /// Client intends to reconnect and replay unanswered launches. The
  /// server records completed replies for dedup only for sessions that set
  /// this, so one-shot clients cost the daemon no replay memory.
  bool replay = false;
};

struct HelloOkMsg {
  std::uint32_t version = kProtocolVersion;
  std::uint32_t inflight_limit = 0;        ///< per-client admission bound
  std::uint64_t deadline_micros = 0;       ///< per-request deadline; 0 = none
  bool argument_batching = true;           ///< backend optimization setting
};

struct FlushMsg {
  std::uint64_t token = 0;
};

struct FlushDoneMsg {
  std::uint64_t token = 0;
  bool ok = false;  ///< false: backend unreachable or drain timeout
};

struct ErrorMsg {
  std::string message;
};

struct StatsMsg {
  std::uint64_t token = 0;
  bool include_histograms = true;
};

/// One coherent snapshot of the daemon's trace::Counters and obs histogram
/// registry. Histograms travel with their full bucket geometry, so the
/// client interpolates percentiles itself (and can merge snapshots from
/// several daemons).
struct StatsReplyMsg {
  std::uint64_t token = 0;
  std::uint64_t uptime_micros = 0;
  std::map<std::string, double> counters;
  std::map<std::string, obs::HistogramSnapshot> histograms;
};

struct MetricsMsg {
  std::uint64_t token = 0;
  /// Also render the Prometheus text exposition into the reply.
  bool include_prometheus = false;
};

/// The sampler's ring contents: per-series point history (oldest first)
/// plus, on request, the Prometheus text exposition of the newest values
/// and counters. A daemon running without a sampler answers with an empty
/// series map.
struct MetricsReplyMsg {
  std::uint64_t token = 0;
  std::uint64_t uptime_micros = 0;
  double interval_seconds = 0.0;  ///< sampler tick; 0 = sampler disabled
  std::map<std::string, obs::SeriesSnapshot> series;
  std::string prometheus_text;  ///< empty unless requested
};

/// One session's authoritative replay state, as moved between shards: the
/// session nonce plus the per-session completed-reply log in completion
/// order (oldest first — the importer rebuilds the same bounded FIFO). The
/// in-flight dedup keys travel implicitly: a migration only runs once the
/// session has no in-flight launches (the exporter refuses otherwise), so
/// the log IS the session's whole dedup state at export time.
struct SessionSnapshot {
  std::uint64_t session = 0;
  struct Entry {
    std::uint64_t request_id = 0;
    std::string owner;
    bool ok = false;
    std::string error;
    /// CompletionReply::finish_time in seconds; the f64 wire codec keeps
    /// the IEEE-754 bits, so a migrated reply replays bit-identically.
    double finish_seconds = 0.0;
    std::uint8_t where = 0;  ///< consolidate::CompletionReply::Where
  };
  std::vector<Entry> entries;
};

struct MigrateExportMsg {
  std::uint64_t token = 0;
  std::uint64_t session = 0;
  /// false: return a read-only snapshot, source stays authoritative.
  /// true: drop the source's copy — sent only after the import was acked,
  /// so a torn handoff at any earlier point leaves the source untouched.
  bool commit = false;
};

struct MigrateExportReplyMsg {
  std::uint64_t token = 0;
  bool ok = false;
  std::string error;  ///< "unknown session", "session busy", ...
  SessionSnapshot snapshot;  ///< populated only for ok snapshot requests
};

struct MigrateImportMsg {
  std::uint64_t token = 0;
  SessionSnapshot snapshot;
};

struct MigrateImportReplyMsg {
  std::uint64_t token = 0;
  bool ok = false;
  std::string error;
};

struct SyncPullMsg {
  std::uint64_t token = 0;
  std::uint64_t have_epoch = 0;  ///< the standby's last applied epoch
};

/// The primary router's fleet view, replicated to the standby: per-shard
/// health (index order matches the shared --shard list) and the sticky
/// placement table (session nonce -> shard index). `epoch` bumps on every
/// placement / migration / re-home, so a standby can tell fresh from stale.
struct SyncStateMsg {
  std::uint64_t token = 0;
  std::uint64_t epoch = 0;
  struct ShardState {
    std::string endpoint;
    bool alive = true;
    bool draining = false;
    bool breaker_open = false;
    std::uint64_t placements = 0;
  };
  std::vector<ShardState> shards;
  std::map<std::uint64_t, std::uint32_t> placements;
};

// ---- KernelDesc (nested inside launch requests) ----
void encode_kernel_desc(net::Writer& w, const gpusim::KernelDesc& d);
gpusim::KernelDesc decode_kernel_desc(net::Reader& r);

// ---- whole-message encode/decode ----
// Encoders return the frame payload; decoders return nullopt on any
// malformed input (underflow, trailing bytes, bad enum values).
std::vector<std::byte> encode_hello(const HelloMsg& m);
std::optional<HelloMsg> decode_hello(std::span<const std::byte> payload);

std::vector<std::byte> encode_hello_ok(const HelloOkMsg& m);
std::optional<HelloOkMsg> decode_hello_ok(std::span<const std::byte> payload);

/// Serializes owner, request_id, desc, staged_bytes, api_messages, plus the
/// additive trace_id/parent_span_id distributed-trace context (still
/// protocol version 1: a pre-trace peer's launch ends early and decodes as
/// trace_id 0 — no context). The reply channel is transport-local and never
/// crosses the wire.
std::vector<std::byte> encode_launch(const consolidate::LaunchRequest& req);
std::optional<consolidate::LaunchRequest> decode_launch(
    std::span<const std::byte> payload);

std::vector<std::byte> encode_completion(
    const consolidate::CompletionReply& reply);
std::optional<consolidate::CompletionReply> decode_completion(
    std::span<const std::byte> payload);

std::vector<std::byte> encode_flush(const FlushMsg& m);
std::optional<FlushMsg> decode_flush(std::span<const std::byte> payload);

std::vector<std::byte> encode_flush_done(const FlushDoneMsg& m);
std::optional<FlushDoneMsg> decode_flush_done(
    std::span<const std::byte> payload);

/// consolidate::ShutdownRequest carries no fields; its frame is empty.
std::vector<std::byte> encode_shutdown();

std::vector<std::byte> encode_error(const ErrorMsg& m);
std::optional<ErrorMsg> decode_error(std::span<const std::byte> payload);

std::vector<std::byte> encode_stats(const StatsMsg& m);
std::optional<StatsMsg> decode_stats(std::span<const std::byte> payload);

std::vector<std::byte> encode_stats_reply(const StatsReplyMsg& m);
std::optional<StatsReplyMsg> decode_stats_reply(
    std::span<const std::byte> payload);

std::vector<std::byte> encode_metrics(const MetricsMsg& m);
std::optional<MetricsMsg> decode_metrics(std::span<const std::byte> payload);

std::vector<std::byte> encode_metrics_reply(const MetricsReplyMsg& m);
std::optional<MetricsReplyMsg> decode_metrics_reply(
    std::span<const std::byte> payload);

std::vector<std::byte> encode_migrate_export(const MigrateExportMsg& m);
std::optional<MigrateExportMsg> decode_migrate_export(
    std::span<const std::byte> payload);

std::vector<std::byte> encode_migrate_export_reply(
    const MigrateExportReplyMsg& m);
std::optional<MigrateExportReplyMsg> decode_migrate_export_reply(
    std::span<const std::byte> payload);

std::vector<std::byte> encode_migrate_import(const MigrateImportMsg& m);
std::optional<MigrateImportMsg> decode_migrate_import(
    std::span<const std::byte> payload);

std::vector<std::byte> encode_migrate_import_reply(
    const MigrateImportReplyMsg& m);
std::optional<MigrateImportReplyMsg> decode_migrate_import_reply(
    std::span<const std::byte> payload);

std::vector<std::byte> encode_sync_pull(const SyncPullMsg& m);
std::optional<SyncPullMsg> decode_sync_pull(
    std::span<const std::byte> payload);

std::vector<std::byte> encode_sync_state(const SyncStateMsg& m);
std::optional<SyncStateMsg> decode_sync_state(
    std::span<const std::byte> payload);

}  // namespace ewc::server
