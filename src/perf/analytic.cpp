#include "perf/analytic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ewc::perf {

AnalyticModel::AnalyticModel(DeviceConfig dev) : dev_(dev) {}

int max_resident_blocks(const DeviceConfig& dev, const KernelDesc& kernel) {
  int resident = dev.max_blocks_per_sm;
  if (kernel.threads_per_block > 0) {
    resident =
        std::min(resident, dev.max_threads_per_sm / kernel.threads_per_block);
  }
  const std::int64_t regs_per_block =
      static_cast<std::int64_t>(kernel.resources.registers_per_thread) *
      kernel.threads_per_block;
  if (regs_per_block > 0) {
    resident = std::min(
        resident, static_cast<int>(dev.registers_per_sm / regs_per_block));
  }
  if (kernel.resources.shared_mem_per_block > 0) {
    resident = std::min(
        resident, static_cast<int>(dev.shared_mem_per_sm /
                                   kernel.resources.shared_mem_per_block));
  }
  return std::max(resident, 1);
}

double per_warp_memory_cap(const DeviceConfig& dev, const KernelDesc& kernel) {
  return kernel.effective_mlp(dev) * kernel.avg_tx_bytes(dev) /
         (kernel.effective_mem_latency_cycles(dev) / dev.shader_clock.hertz());
}

WarpParallelism AnalyticModel::warp_parallelism(const KernelDesc& kernel,
                                                double warps_per_sm,
                                                int active_sms,
                                                double bandwidth_fraction) const {
  WarpParallelism wp;
  wp.active_warps_per_sm = warps_per_sm;
  if (warps_per_sm <= 0.0) return wp;

  const double latency = kernel.effective_mem_latency_cycles(dev_);
  const double mem_insts = kernel.mix.mem_insts();
  const double comp_cycles = kernel.warp_compute_cycles(dev_);

  if (mem_insts <= 0.0) {
    wp.mwp = warps_per_sm;
    wp.cwp = 1.0;
    wp.memory_bound = false;
    return wp;
  }

  // MWP bounded by latency/departure overlap (how many warps can have
  // requests in flight) ...
  const double f = kernel.coalesced_fraction();
  const double departure =
      f * dev_.coalesced_departure_cycles +
      (1.0 - f) * dev_.uncoalesced_departure_cycles;
  const double mwp_latency = latency / std::max(1.0, departure);

  // ... and by peak DRAM bandwidth: bytes one warp streams per cycle while a
  // request is outstanding vs. the per-SM bandwidth slice.
  const double bw_per_warp =
      kernel.effective_mlp(dev_) * kernel.avg_tx_bytes(dev_) / latency;
  const double eff_bw_cycles =
      dev_.dram_bandwidth.bytes_per_second() * bandwidth_fraction *
      kernel.dram_efficiency(dev_) / dev_.shader_clock.hertz();
  const double mwp_peak_bw =
      eff_bw_cycles / std::max(1e-30, bw_per_warp * active_sms);

  wp.mwp = std::min({mwp_latency, mwp_peak_bw, warps_per_sm});

  // CWP: how many warps' computation fits into one memory waiting period.
  const double mem_cycles = mem_insts * latency;
  wp.cwp = comp_cycles > 0.0
               ? std::min(warps_per_sm, (mem_cycles + comp_cycles) / comp_cycles)
               : warps_per_sm;
  wp.memory_bound = wp.cwp >= wp.mwp;
  return wp;
}

KernelPrediction AnalyticModel::predict(const KernelDesc& kernel,
                                        double bandwidth_fraction) const {
  if (bandwidth_fraction <= 0.0 || bandwidth_fraction > 1.0) {
    throw std::invalid_argument("AnalyticModel: bandwidth_fraction out of range");
  }
  KernelPrediction pred;
  pred.h2d_time = h2d_time(
      common::Bytes{kernel.h2d_bytes.bytes() +
                    kernel.resources.constant_data.bytes()});
  pred.d2h_time = d2h_time(kernel.d2h_bytes);

  if (kernel.num_blocks == 0) {
    pred.total_time = pred.h2d_time + pred.d2h_time;
    return pred;
  }

  const double clock = dev_.shader_clock.hertz();
  const int warps = kernel.warps_per_block(dev_);
  const double comp_per_warp = kernel.warp_compute_cycles(dev_);
  const double stall_seconds = kernel.warp_stall_cycles(dev_) / clock;
  const double mem_per_warp = kernel.warp_mem_bytes(dev_);

  // Residency: how many blocks fit one SM simultaneously.
  const int resident = max_resident_blocks(dev_, kernel);

  // Static wave-by-wave schedule: wave w holds min(remaining, capacity)
  // blocks spread round-robin over the SMs.
  const int capacity = resident * dev_.num_sms;
  int remaining = kernel.num_blocks;
  double kernel_seconds = 0.0;
  double total_cycles = 0.0;
  int waves = 0;
  WarpParallelism last_wp;

  const double per_warp_cap_rate =
      kernel.effective_mlp(dev_) * kernel.avg_tx_bytes(dev_) /
      (kernel.effective_mem_latency_cycles(dev_) / clock);  // bytes/s

  while (remaining > 0) {
    ++waves;
    const int in_wave = std::min(remaining, capacity);
    remaining -= in_wave;

    const int full_sms = in_wave / dev_.num_sms;      // blocks on every SM
    const int extra = in_wave % dev_.num_sms;         // SMs with one more
    const int max_blocks_on_sm = full_sms + (extra > 0 ? 1 : 0);
    const int active_sms = std::min(in_wave, dev_.num_sms);

    // The slowest SM carries max_blocks_on_sm blocks.
    const double warps_on_sm = static_cast<double>(max_blocks_on_sm) * warps;
    const double comp_seconds = comp_per_warp * warps_on_sm / clock;

    double mem_seconds = 0.0;
    if (mem_per_warp > 0.0) {
      // Device-wide demand this wave (static: assumed to persist all wave).
      const double total_warps = static_cast<double>(in_wave) * warps;
      const double total_cap = total_warps * per_warp_cap_rate;
      const double eff_bw = dev_.dram_bandwidth.bytes_per_second() *
                            bandwidth_fraction * kernel.dram_efficiency(dev_);
      const double scale = std::min(1.0, eff_bw / std::max(1e-30, total_cap));
      const double per_warp_rate = per_warp_cap_rate * scale;
      mem_seconds = mem_per_warp / per_warp_rate;
    }

    // Barrier stalls elapse concurrently for every resident block.
    kernel_seconds += std::max({comp_seconds, stall_seconds, mem_seconds});
    last_wp = warp_parallelism(kernel, warps_on_sm, active_sms,
                               bandwidth_fraction);
  }

  total_cycles = kernel_seconds * clock;
  pred.kernel_time = Duration::from_seconds(kernel_seconds);
  pred.execution_cycles = total_cycles;
  pred.total_time = pred.h2d_time + pred.kernel_time + pred.d2h_time;
  pred.parallelism = last_wp;
  pred.waves = waves;
  return pred;
}

Duration AnalyticModel::h2d_time(common::Bytes bytes) const {
  if (bytes.bytes() <= 0.0) return Duration::zero();
  return bytes / dev_.pcie_h2d + dev_.transfer_latency;
}

Duration AnalyticModel::d2h_time(common::Bytes bytes) const {
  if (bytes.bytes() <= 0.0) return Duration::zero();
  return bytes / dev_.pcie_d2h + dev_.transfer_latency;
}

Duration AnalyticModel::solo_block_time(const KernelDesc& kernel) const {
  const double clock = dev_.shader_clock.hertz();
  const int warps = kernel.warps_per_block(dev_);
  const double comp_seconds =
      std::max(kernel.warp_compute_cycles(dev_) * warps,
               kernel.warp_stall_cycles(dev_)) /
      clock;
  double mem_seconds = 0.0;
  if (kernel.warp_mem_bytes(dev_) > 0.0) {
    const double per_warp_cap =
        kernel.effective_mlp(dev_) * kernel.avg_tx_bytes(dev_) /
        (kernel.effective_mem_latency_cycles(dev_) / clock);
    const double bw_slice = dev_.dram_bandwidth.bytes_per_second() *
                            kernel.dram_efficiency(dev_) / dev_.num_sms;
    const double per_warp_rate =
        std::min(per_warp_cap, bw_slice / std::max(1, warps));
    mem_seconds = kernel.warp_mem_bytes(dev_) / per_warp_rate;
  }
  return Duration::from_seconds(std::max(comp_seconds, mem_seconds));
}

}  // namespace ewc::perf
