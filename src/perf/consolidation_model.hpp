// Consolidated-workload performance prediction (paper Section V).
//
// The paper splits consolidation into two categories:
//
//  Type 1 — at most one thread block lands on each SM (e.g. six 3-block
//  encryption instances on 30 SMs). Each constituent kernel is predicted by
//  the single-kernel model extended with *global memory bandwidth sharing*:
//  every co-runner's demand persists for the whole run and the DRAM bandwidth
//  is split proportionally (Figure 3 validates this).
//
//  Type 2 — more than one block per SM. The model must reason about the GPU
//  block scheduler: it replays the round-robin initial distribution plus the
//  load-balancing redistribution of untouched blocks, identifies the
//  *critical SM* (the one finishing last), merges the blocks scheduled there
//  into one synthetic "big workload", and predicts that workload's time under
//  device-wide bandwidth sharing (Figure 4 validates this; the paper reports
//  <12% error and attributes the residual to the static bandwidth-sharing
//  assumption).
#pragma once

#include <string>
#include <vector>

#include "gpusim/kernel_desc.hpp"
#include "perf/analytic.hpp"

namespace ewc::perf {

using gpusim::LaunchPlan;

enum class ConsolidationType { kType1, kType2 };

struct InstancePrediction {
  int instance_id = 0;
  std::string kernel_name;
  Duration kernel_time = Duration::zero();
};

struct ConsolidationPrediction {
  ConsolidationType type = ConsolidationType::kType1;
  Duration kernel_time = Duration::zero();
  Duration h2d_time = Duration::zero();
  Duration d2h_time = Duration::zero();
  Duration total_time = Duration::zero();
  double execution_cycles = 0.0;
  int critical_sm = 0;  ///< type 2 only
  /// Blocks the replay assigned to the critical SM, by instance order.
  std::vector<int> critical_sm_blocks;
  std::vector<InstancePrediction> per_instance;  ///< type 1 only
};

class ConsolidationModel {
 public:
  explicit ConsolidationModel(gpusim::DeviceConfig dev = gpusim::tesla_c1060());

  /// Paper's categorization: type 1 iff the combined grid cannot put two
  /// blocks on one SM.
  ConsolidationType classify(const LaunchPlan& plan) const;

  /// Predict the consolidated execution of `plan`.
  /// @throws std::invalid_argument for empty plans.
  ConsolidationPrediction predict(const LaunchPlan& plan) const;

  /// Predict serial (unconsolidated) back-to-back execution.
  Duration predict_serial(const std::vector<gpusim::KernelInstance>& instances) const;

  const AnalyticModel& analytic() const { return analytic_; }

 private:
  ConsolidationPrediction predict_type1(const LaunchPlan& plan) const;
  ConsolidationPrediction predict_type2(const LaunchPlan& plan) const;
  Duration transfer_h2d(const LaunchPlan& plan) const;
  Duration transfer_d2h(const LaunchPlan& plan) const;

  gpusim::DeviceConfig dev_;
  AnalyticModel analytic_;
};

}  // namespace ewc::perf
