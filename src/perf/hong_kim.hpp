// The original Hong & Kim analytical model (ISCA'09), exact closed form.
//
// The paper's Section V "extends a recent GPU performance model [8]"; this
// module implements that base model verbatim — MWP/CWP case analysis,
// repetition count, synchronization cost — so the repository can compare
// three independent estimates for any kernel:
//
//   1. hong_kim_cycles()           (this file: the literature baseline)
//   2. perf::AnalyticModel         (the paper-extended static model)
//   3. gpusim::FluidEngine         (the dynamic simulator = "measurement")
//
// bench_model_comparison prints all three side by side.
#pragma once

#include "gpusim/device_config.hpp"
#include "gpusim/kernel_desc.hpp"

namespace ewc::perf {

/// Which of the model's three execution cases applied.
enum class HongKimCase {
  kBalanced,      ///< MWP == CWP == N: fully overlapped
  kMemoryBound,   ///< CWP >= MWP: memory requests dominate
  kComputeBound,  ///< CWP < MWP: computation dominates
};

const char* hong_kim_case_name(HongKimCase c);

struct HongKimResult {
  double exec_cycles = 0.0;  ///< predicted total execution cycles
  double mwp = 0.0;          ///< memory warp parallelism
  double cwp = 0.0;          ///< computation warp parallelism
  double active_warps = 0.0; ///< N: warps per SM
  int repetitions = 1;       ///< #Rep: block waves per SM
  double synch_cost_cycles = 0.0;
  HongKimCase which_case = HongKimCase::kComputeBound;

  common::Duration time(const gpusim::DeviceConfig& dev) const {
    return common::Duration::from_seconds(exec_cycles /
                                          dev.shader_clock.hertz());
  }
};

/// Evaluate the ISCA'09 closed form for `kernel` running alone on `dev`.
/// @throws std::invalid_argument for kernels with no work or no blocks.
HongKimResult hong_kim_cycles(const gpusim::DeviceConfig& dev,
                              const gpusim::KernelDesc& kernel);

}  // namespace ewc::perf
