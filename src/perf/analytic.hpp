// Analytic single-kernel GPU performance model (paper Section V).
//
// The model follows Hong & Kim's MWP/CWP analysis [8]: a kernel's execution
// is bounded by (a) the SM's warp-instruction issue throughput shared among
// resident warps, (b) device DRAM bandwidth, and (c) per-warp memory latency
// limited by memory-level parallelism. The paper parameterizes it with the
// quantities of Section VII: computation instructions per thread,
// coalesced/uncoalesced memory instructions per thread, synchronization
// instructions, DRAM latency, departure delays, SM clock, and DRAM bandwidth.
//
// Unlike the dynamic simulator (gpusim::FluidEngine) this model is *static*:
// it assumes a fixed block distribution and permanent bandwidth sharing. The
// deliberate gap between the two is what Figures 3/4 measure.
#pragma once

#include "common/units.hpp"
#include "gpusim/device_config.hpp"
#include "gpusim/kernel_desc.hpp"

namespace ewc::perf {

using common::Duration;
using gpusim::DeviceConfig;
using gpusim::KernelDesc;

/// Diagnostics in Hong-Kim vocabulary, reported alongside predictions.
struct WarpParallelism {
  double mwp = 0.0;  ///< memory warp parallelism (per SM)
  double cwp = 0.0;  ///< computation warp parallelism (per SM)
  double active_warps_per_sm = 0.0;
  bool memory_bound = false;
};

/// Prediction for one kernel (or one merged "big workload").
struct KernelPrediction {
  Duration kernel_time = Duration::zero();
  Duration h2d_time = Duration::zero();
  Duration d2h_time = Duration::zero();
  Duration total_time = Duration::zero();
  double execution_cycles = 0.0;  ///< kernel_time in shader cycles
  WarpParallelism parallelism;
  int waves = 1;  ///< residency-limited dispatch waves
};

/// Maximum co-resident blocks of `kernel` on one SM (registers, shared
/// memory, thread and block caps). Always >= 1 for a runnable kernel.
int max_resident_blocks(const DeviceConfig& dev, const KernelDesc& kernel);

/// Peak bytes/second one warp of `kernel` can pull from DRAM (MLP-limited).
double per_warp_memory_cap(const DeviceConfig& dev, const KernelDesc& kernel);

class AnalyticModel {
 public:
  explicit AnalyticModel(DeviceConfig dev = gpusim::tesla_c1060());

  /// Predict a kernel running alone on the device.
  /// @param bandwidth_fraction  share of DRAM bandwidth available to this
  ///        kernel (1.0 alone; <1 under type-1 consolidation sharing).
  KernelPrediction predict(const KernelDesc& kernel,
                           double bandwidth_fraction = 1.0) const;

  /// Hong-Kim MWP/CWP diagnostics for a kernel at a given per-SM warp count.
  WarpParallelism warp_parallelism(const KernelDesc& kernel,
                                   double warps_per_sm,
                                   int active_sms,
                                   double bandwidth_fraction = 1.0) const;

  /// Host<->device transfer time for given byte counts (one op each way).
  Duration h2d_time(common::Bytes bytes) const;
  Duration d2h_time(common::Bytes bytes) const;

  /// Time for one thread block running alone on one SM with a 1/num_sms
  /// bandwidth share (used by the type-2 critical-SM replay).
  Duration solo_block_time(const KernelDesc& kernel) const;

  const DeviceConfig& device() const { return dev_; }

 private:
  DeviceConfig dev_;
};

}  // namespace ewc::perf
