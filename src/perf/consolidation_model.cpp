#include "perf/consolidation_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

namespace ewc::perf {

namespace {

/// One kernel's aggregate DRAM demand for the phased-sharing analysis.
struct MemDemand {
  std::string kernel;
  double bytes = 0.0;     ///< device-wide bytes the kernel must move
  double cap_rate = 0.0;  ///< bytes/s its resident warps can pull (MLP cap)
  double eff = 1.0;       ///< stream's DRAM row-locality efficiency
};

/// Phased bandwidth sharing: while several kernels have outstanding memory
/// demand, effective DRAM bandwidth (degraded by the demand-weighted stream
/// efficiency and the kernel-mixing penalty) is split proportionally to each
/// kernel's demand cap; when one kernel's demand drains, the shares are
/// recomputed. This refines the paper's "bandwidth sharing always happens"
/// assumption at kernel granularity while remaining a static model (no block
/// scheduling, no per-SM state). Returns each demand's finish time.
std::vector<double> phased_memory_finish(const gpusim::DeviceConfig& dev,
                                         std::vector<MemDemand> demands) {
  std::vector<double> finish(demands.size(), 0.0);
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (demands[i].bytes > 0.0 && demands[i].cap_rate > 0.0) {
      active.push_back(i);
    }
  }
  double t = 0.0;
  while (!active.empty()) {
    double total_cap = 0.0;
    double eff_weighted = 0.0;
    std::set<std::string> names;
    for (std::size_t i : active) {
      total_cap += demands[i].cap_rate;
      eff_weighted += demands[i].cap_rate * demands[i].eff;
      names.insert(demands[i].kernel);
    }
    const double mixing = std::max(
        dev.min_mixing_efficiency,
        1.0 - dev.mixing_penalty_per_kernel *
                  (static_cast<double>(names.size()) - 1.0));
    const double eff_bw = dev.dram_bandwidth.bytes_per_second() *
                          (eff_weighted / total_cap) * mixing;
    const double scale = std::min(1.0, eff_bw / total_cap);

    // Next kernel to drain under the current shares.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i : active) {
      dt = std::min(dt, demands[i].bytes / (demands[i].cap_rate * scale));
    }
    t += dt;
    std::vector<std::size_t> still;
    for (std::size_t i : active) {
      demands[i].bytes -= demands[i].cap_rate * scale * dt;
      if (demands[i].bytes <= 1e-6) {
        finish[i] = t;
      } else {
        still.push_back(i);
      }
    }
    active = std::move(still);
  }
  return finish;
}

/// Build the per-instance demand vector for a plan. `one_block_per_sm`
/// restricts the demand cap to one block per SM (type 1); otherwise the cap
/// covers all simultaneously-resident blocks.
std::vector<MemDemand> plan_demands(const gpusim::DeviceConfig& dev,
                                    const LaunchPlan& plan,
                                    bool one_block_per_sm) {
  std::vector<MemDemand> demands(plan.instances.size());
  for (std::size_t i = 0; i < plan.instances.size(); ++i) {
    const auto& k = plan.instances[i].desc;
    if (k.num_blocks == 0 || !k.has_mem_work()) continue;
    const double warps = k.warps_per_block(dev);
    const int resident =
        one_block_per_sm
            ? k.num_blocks
            : std::min(k.num_blocks, max_resident_blocks(dev, k) * dev.num_sms);
    demands[i].kernel = k.name;
    demands[i].bytes =
        k.warp_mem_bytes(dev) * warps * static_cast<double>(k.num_blocks);
    demands[i].cap_rate =
        per_warp_memory_cap(dev, k) * warps * static_cast<double>(resident);
    demands[i].eff = k.dram_efficiency(dev);
  }
  return demands;
}

}  // namespace

ConsolidationModel::ConsolidationModel(gpusim::DeviceConfig dev)
    : dev_(dev), analytic_(dev) {}

ConsolidationType ConsolidationModel::classify(const LaunchPlan& plan) const {
  return plan.total_blocks() <= dev_.num_sms ? ConsolidationType::kType1
                                             : ConsolidationType::kType2;
}

Duration ConsolidationModel::transfer_h2d(const LaunchPlan& plan) const {
  std::set<std::string> constants_seen;
  Duration t = Duration::zero();
  for (const auto& inst : plan.instances) {
    double bytes = inst.desc.h2d_bytes.bytes();
    double cbytes = inst.desc.resources.constant_data.bytes();
    if (cbytes > 0.0) {
      if (!plan.reuse_constant_data ||
          constants_seen.insert(inst.desc.name).second) {
        bytes += cbytes;
      }
    }
    t += analytic_.h2d_time(common::Bytes::from_bytes(bytes));
  }
  return t;
}

Duration ConsolidationModel::transfer_d2h(const LaunchPlan& plan) const {
  Duration t = Duration::zero();
  for (const auto& inst : plan.instances) {
    t += analytic_.d2h_time(inst.desc.d2h_bytes);
  }
  return t;
}

ConsolidationPrediction ConsolidationModel::predict(const LaunchPlan& plan) const {
  if (plan.instances.empty()) {
    throw std::invalid_argument("ConsolidationModel: empty plan");
  }
  return classify(plan) == ConsolidationType::kType1 ? predict_type1(plan)
                                                     : predict_type2(plan);
}

ConsolidationPrediction ConsolidationModel::predict_type1(
    const LaunchPlan& plan) const {
  ConsolidationPrediction pred;
  pred.type = ConsolidationType::kType1;
  const double clock = dev_.shader_clock.hertz();

  const auto finish =
      phased_memory_finish(dev_, plan_demands(dev_, plan, true));

  Duration longest = Duration::zero();
  for (std::size_t i = 0; i < plan.instances.size(); ++i) {
    const auto& k = plan.instances[i].desc;
    Duration t = Duration::zero();
    if (k.num_blocks > 0) {
      // One block per SM: the block's warps own the SM's issue bandwidth.
      const double warps = k.warps_per_block(dev_);
      const double comp_s = k.warp_compute_cycles(dev_) * warps / clock;
      const double stall_s = k.warp_stall_cycles(dev_) / clock;
      t = Duration::from_seconds(std::max({comp_s, stall_s, finish[i]}));
    }
    pred.per_instance.push_back(
        InstancePrediction{plan.instances[i].instance_id, k.name, t});
    longest = std::max(longest, t);
  }

  pred.kernel_time = longest;
  pred.h2d_time = transfer_h2d(plan);
  pred.d2h_time = transfer_d2h(plan);
  pred.total_time = pred.h2d_time + pred.kernel_time + pred.d2h_time;
  pred.execution_cycles = pred.kernel_time.seconds() * clock;
  return pred;
}

ConsolidationPrediction ConsolidationModel::predict_type2(
    const LaunchPlan& plan) const {
  ConsolidationPrediction pred;
  pred.type = ConsolidationType::kType2;
  const double clock = dev_.shader_clock.hertz();

  // ---- replay the block scheduler (compute side + critical SM) ----
  // Mirror the GigaThread dispatch the paper describes: the combined grid is
  // distributed round-robin in template order, with blocks CO-RESIDING on an
  // SM while registers / shared memory / threads allow. Blocks that do not
  // fit anywhere are the "untouched" blocks the scheduler later redistributes
  // to whichever SM frees first — statically approximated by assigning them
  // to the SM with the lightest solo-time load.
  struct SmLoad {
    double solo_load = 0.0;  ///< solo-time load estimate, seconds
    double comp_cycles = 0.0;
    double stall_seconds = 0.0;  ///< serialized barrier-stall floor
    int threads = 0;
    int nblocks = 0;
    std::int64_t regs = 0;
    std::int64_t smem = 0;
    std::vector<int> blocks;  ///< instance index per assigned block
  };
  std::vector<SmLoad> sms(static_cast<std::size_t>(dev_.num_sms));
  auto fits = [&](const SmLoad& sm, const gpusim::KernelDesc& k) {
    if (sm.nblocks + 1 > dev_.max_blocks_per_sm) return false;
    if (sm.threads + k.threads_per_block > dev_.max_threads_per_sm) return false;
    const std::int64_t regs =
        static_cast<std::int64_t>(k.resources.registers_per_thread) *
        k.threads_per_block;
    if (sm.regs + regs > dev_.registers_per_sm) return false;
    if (sm.smem + k.resources.shared_mem_per_block > dev_.shared_mem_per_sm) {
      return false;
    }
    return true;
  };
  int rr = 0;
  for (std::size_t i = 0; i < plan.instances.size(); ++i) {
    const auto& k = plan.instances[i].desc;
    const double solo = analytic_.solo_block_time(k).seconds();
    const double warps = k.warps_per_block(dev_);
    for (int b = 0; b < k.num_blocks; ++b) {
      int chosen = -1;
      for (int probe = 0; probe < dev_.num_sms; ++probe) {
        const int s = (rr + probe) % dev_.num_sms;
        if (fits(sms[static_cast<std::size_t>(s)], k)) {
          chosen = s;
          break;
        }
      }
      SmLoad* sm;
      if (chosen >= 0) {
        sm = &sms[static_cast<std::size_t>(chosen)];
        sm->threads += k.threads_per_block;
        sm->nblocks += 1;
        sm->regs += static_cast<std::int64_t>(k.resources.registers_per_thread) *
                    k.threads_per_block;
        sm->smem += k.resources.shared_mem_per_block;
        rr = (chosen + 1) % dev_.num_sms;
      } else {
        sm = &*std::min_element(sms.begin(), sms.end(),
                                [](const SmLoad& a, const SmLoad& b2) {
                                  return a.solo_load < b2.solo_load;
                                });
      }
      sm->solo_load += solo;
      sm->comp_cycles += k.warp_compute_cycles(dev_) * warps;
      // Co-resident blocks stall concurrently; only serialized waves add.
      sm->stall_seconds += k.warp_stall_cycles(dev_) /
                           (clock * max_resident_blocks(dev_, k));
      sm->blocks.push_back(static_cast<int>(i));
    }
  }

  double comp_worst = 0.0;
  double load_worst = 0.0;
  int critical = 0;
  for (std::size_t s = 0; s < sms.size(); ++s) {
    comp_worst = std::max(
        comp_worst, std::max(sms[s].comp_cycles / clock, sms[s].stall_seconds));
    if (sms[s].solo_load > load_worst) {
      load_worst = sms[s].solo_load;
      critical = static_cast<int>(s);
    }
  }

  // ---- memory side: phased device-level bandwidth sharing ----
  const auto finish =
      phased_memory_finish(dev_, plan_demands(dev_, plan, false));
  const double mem_worst =
      finish.empty() ? 0.0 : *std::max_element(finish.begin(), finish.end());

  // The merged "big workload" on the critical SM finishes when both its
  // compute serialization and the device's memory drain are done.
  const double worst = std::max(comp_worst, mem_worst);

  pred.kernel_time = Duration::from_seconds(worst);
  pred.critical_sm = critical;
  pred.critical_sm_blocks = sms[static_cast<std::size_t>(critical)].blocks;
  pred.h2d_time = transfer_h2d(plan);
  pred.d2h_time = transfer_d2h(plan);
  pred.total_time = pred.h2d_time + pred.kernel_time + pred.d2h_time;
  pred.execution_cycles = worst * clock;
  return pred;
}

Duration ConsolidationModel::predict_serial(
    const std::vector<gpusim::KernelInstance>& instances) const {
  Duration total = Duration::zero();
  for (const auto& inst : instances) {
    total += analytic_.predict(inst.desc).total_time;
  }
  return total;
}

}  // namespace ewc::perf
