#include "perf/hong_kim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "perf/analytic.hpp"

namespace ewc::perf {

const char* hong_kim_case_name(HongKimCase c) {
  switch (c) {
    case HongKimCase::kBalanced: return "balanced";
    case HongKimCase::kMemoryBound: return "memory-bound";
    case HongKimCase::kComputeBound: return "compute-bound";
  }
  return "?";
}

HongKimResult hong_kim_cycles(const gpusim::DeviceConfig& dev,
                              const gpusim::KernelDesc& kernel) {
  if (kernel.num_blocks <= 0) {
    throw std::invalid_argument("hong_kim_cycles: kernel has no blocks");
  }
  const double mem_insts = kernel.mix.mem_insts();
  const double comp_insts = kernel.mix.compute_insts();
  if (mem_insts + comp_insts <= 0.0) {
    throw std::invalid_argument("hong_kim_cycles: kernel has no work");
  }

  HongKimResult r;

  // N: concurrently running warps on one SM.
  const int resident = max_resident_blocks(dev, kernel);
  const int blocks_per_sm_now =
      std::min(resident, std::max(1, (kernel.num_blocks + dev.num_sms - 1) /
                                         dev.num_sms));
  r.active_warps =
      static_cast<double>(blocks_per_sm_now) * kernel.warps_per_block(dev);
  const double n = r.active_warps;

  const int active_sms = std::min(kernel.num_blocks, dev.num_sms);

  // #Rep: how many waves of blocks each SM processes.
  r.repetitions = static_cast<int>(std::ceil(
      static_cast<double>(kernel.num_blocks) /
      (static_cast<double>(blocks_per_sm_now) * active_sms)));

  // Memory system constants.
  const double mem_l = kernel.effective_mem_latency_cycles(dev);
  const double f = kernel.coalesced_fraction();
  const double departure = f * dev.coalesced_departure_cycles +
                           (1.0 - f) * dev.uncoalesced_departure_cycles;

  // MWP (Eq. set of the ISCA'09 paper).
  const double mwp_without_bw = mem_l / std::max(1.0, departure);
  const double freq = dev.shader_clock.hertz();
  const double bw_per_warp =
      freq * kernel.avg_tx_bytes(dev) / mem_l;  // bytes/s one warp streams
  const double mwp_peak_bw =
      dev.dram_bandwidth.bytes_per_second() /
      std::max(1e-30, bw_per_warp * active_sms);
  r.mwp = std::max(1.0, std::min({mwp_without_bw, mwp_peak_bw, n}));

  // Computation / memory cycles of ONE warp over the kernel.
  const double comp_cycles =
      kernel.warp_compute_cycles(dev) + kernel.warp_stall_cycles(dev);
  const double mem_cycles = mem_insts * mem_l;

  // CWP.
  const double cwp_full =
      comp_cycles > 0.0 ? (mem_cycles + comp_cycles) / comp_cycles : n;
  r.cwp = std::max(1.0, std::min(cwp_full, n));

  const double rep = static_cast<double>(r.repetitions);
  double exec = 0.0;
  if (mem_insts <= 0.0) {
    // Pure compute: warps serialize on the issue pipeline.
    r.which_case = HongKimCase::kComputeBound;
    exec = comp_cycles * n * rep;
  } else if (r.mwp >= n && r.cwp >= n) {
    r.which_case = HongKimCase::kBalanced;
    exec = (mem_cycles + comp_cycles +
            comp_cycles / mem_insts * (r.mwp - 1.0)) *
           rep;
  } else if (r.cwp >= r.mwp) {
    r.which_case = HongKimCase::kMemoryBound;
    exec = (mem_cycles * n / r.mwp +
            comp_cycles / mem_insts * (r.mwp - 1.0)) *
           rep;
  } else {
    r.which_case = HongKimCase::kComputeBound;
    exec = (mem_l + comp_cycles * n) * rep;
  }

  // Synchronization cost: barriers delay the departure of the next wave of
  // requests by the departure delay times the warps ahead.
  r.synch_cost_cycles =
      departure * (r.mwp - 1.0) * kernel.mix.sync_insts * rep;
  r.exec_cycles = exec + r.synch_cost_cycles;
  return r;
}

}  // namespace ewc::perf
