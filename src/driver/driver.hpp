// "wcu": a CUDA *driver*-API-style layer over the wcuda runtime.
//
// The paper's framework intercepts runtime-API calls, but real deployments
// (and the consolidation backend itself) also speak the driver API: modules
// are loaded from PTX images, functions are looked up by name, parameters
// and block shapes are set statefully, and grids are launched by handle.
// This module provides that surface:
//
//   wcuModuleLoadData   - parse + statically analyze a PTX image
//   wcuModuleGetFunction- resolve a kernel handle
//   wcuFuncSetBlockShape/wcuFuncSetSharedSize
//   wcuParamSetSize / wcuParamSetv
//   wcuLaunchGrid       - build the descriptor and run it on the simulator
//   wcuMemAlloc/Free, wcuMemcpyHtoD/DtoH
//
// Handles are opaque indices owned by the Driver; all calls are checked and
// return wcudaError like the runtime layer.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cudart/context.hpp"
#include "gpusim/engine.hpp"
#include "ptx/analyzer.hpp"

namespace ewc::driver {

using cudart::wcudaError;

/// Opaque module handle (0 is invalid).
struct WcuModule {
  std::uint32_t id = 0;
};
/// Opaque function handle (0 is invalid).
struct WcuFunction {
  std::uint32_t id = 0;
};

class Driver {
 public:
  /// @param engine  device the launches execute on.
  /// @param device_capacity  bytes of device memory for this context.
  explicit Driver(const gpusim::FluidEngine& engine,
                  std::size_t device_capacity = std::size_t{4} << 30);

  // ---- module management ----
  wcudaError wcuModuleLoadData(WcuModule* module, std::string_view ptx_image);
  wcudaError wcuModuleUnload(WcuModule module);
  wcudaError wcuModuleGetFunction(WcuFunction* function, WcuModule module,
                                  const std::string& name);

  // ---- function state ----
  wcudaError wcuFuncSetBlockShape(WcuFunction f, int x, int y, int z);
  wcudaError wcuFuncSetSharedSize(WcuFunction f, std::size_t bytes);
  wcudaError wcuParamSetSize(WcuFunction f, std::size_t bytes);
  wcudaError wcuParamSetv(WcuFunction f, std::size_t offset, const void* data,
                          std::size_t bytes);

  // ---- memory ----
  wcudaError wcuMemAlloc(void** dptr, std::size_t bytes);
  wcudaError wcuMemFree(void* dptr);
  wcudaError wcuMemcpyHtoD(void* dst, const void* src, std::size_t bytes);
  wcudaError wcuMemcpyDtoH(void* dst, const void* src, std::size_t bytes);

  // ---- launch ----
  wcudaError wcuLaunchGrid(WcuFunction f, int grid_w, int grid_h);

  /// Accumulated simulated results of every launch through this driver.
  const gpusim::RunResult& stats() const { return stats_; }
  int launches() const { return launches_; }
  std::size_t loaded_modules() const { return modules_.size(); }

 private:
  struct FunctionState {
    std::uint32_t module_id = 0;
    std::string name;
    ptx::KernelAnalysis analysis;
    int block_x = 0, block_y = 1, block_z = 1;
    std::size_t shared_bytes = 0;
    std::vector<std::byte> params;
  };

  FunctionState* find_function(WcuFunction f);

  const gpusim::FluidEngine& engine_;
  cudart::Context context_;
  std::map<std::uint32_t, ptx::PtxModule> modules_;
  std::map<std::uint32_t, FunctionState> functions_;
  std::uint32_t next_module_ = 1;
  std::uint32_t next_function_ = 1;
  gpusim::RunResult stats_;
  int launches_ = 0;
  std::size_t h2d_since_launch_ = 0;
};

}  // namespace ewc::driver
