#include "driver/driver.hpp"

#include <cstring>

#include "ptx/parser.hpp"

namespace ewc::driver {

Driver::Driver(const gpusim::FluidEngine& engine, std::size_t device_capacity)
    : engine_(engine), context_("driver", device_capacity) {
  stats_.sm_stats.resize(static_cast<std::size_t>(engine.device().num_sms));
}

wcudaError Driver::wcuModuleLoadData(WcuModule* module,
                                     std::string_view ptx_image) {
  if (module == nullptr) return wcudaError::kInvalidValue;
  ptx::PtxModule parsed;
  try {
    parsed = ptx::parse_module(ptx_image);
  } catch (const ptx::PtxError&) {
    return wcudaError::kLaunchFailure;
  }
  if (parsed.kernels.empty()) return wcudaError::kInvalidValue;
  const std::uint32_t id = next_module_++;
  modules_.emplace(id, std::move(parsed));
  module->id = id;
  return wcudaError::kSuccess;
}

wcudaError Driver::wcuModuleUnload(WcuModule module) {
  if (modules_.erase(module.id) == 0) return wcudaError::kInvalidValue;
  // Invalidate functions resolved from the module.
  for (auto it = functions_.begin(); it != functions_.end();) {
    if (it->second.module_id == module.id) {
      it = functions_.erase(it);
    } else {
      ++it;
    }
  }
  return wcudaError::kSuccess;
}

wcudaError Driver::wcuModuleGetFunction(WcuFunction* function,
                                        WcuModule module,
                                        const std::string& name) {
  if (function == nullptr) return wcudaError::kInvalidValue;
  auto it = modules_.find(module.id);
  if (it == modules_.end()) return wcudaError::kInvalidValue;
  const ptx::PtxKernel* kernel = it->second.find_kernel(name);
  if (kernel == nullptr) return wcudaError::kUnknownKernel;

  FunctionState state;
  state.module_id = module.id;
  state.name = name;
  try {
    state.analysis = ptx::analyze_kernel(it->second, *kernel);
  } catch (const std::exception&) {
    return wcudaError::kLaunchFailure;
  }
  const std::uint32_t id = next_function_++;
  functions_.emplace(id, std::move(state));
  function->id = id;
  return wcudaError::kSuccess;
}

Driver::FunctionState* Driver::find_function(WcuFunction f) {
  auto it = functions_.find(f.id);
  return it == functions_.end() ? nullptr : &it->second;
}

wcudaError Driver::wcuFuncSetBlockShape(WcuFunction f, int x, int y, int z) {
  FunctionState* fs = find_function(f);
  if (fs == nullptr) return wcudaError::kInvalidValue;
  if (x <= 0 || y <= 0 || z <= 0 || x * y * z > 1024) {
    return wcudaError::kInvalidConfiguration;
  }
  fs->block_x = x;
  fs->block_y = y;
  fs->block_z = z;
  return wcudaError::kSuccess;
}

wcudaError Driver::wcuFuncSetSharedSize(WcuFunction f, std::size_t bytes) {
  FunctionState* fs = find_function(f);
  if (fs == nullptr) return wcudaError::kInvalidValue;
  fs->shared_bytes = bytes;
  return wcudaError::kSuccess;
}

wcudaError Driver::wcuParamSetSize(WcuFunction f, std::size_t bytes) {
  FunctionState* fs = find_function(f);
  if (fs == nullptr) return wcudaError::kInvalidValue;
  fs->params.assign(bytes, std::byte{0});
  return wcudaError::kSuccess;
}

wcudaError Driver::wcuParamSetv(WcuFunction f, std::size_t offset,
                                const void* data, std::size_t bytes) {
  FunctionState* fs = find_function(f);
  if (fs == nullptr || data == nullptr) return wcudaError::kInvalidValue;
  if (offset + bytes > fs->params.size()) return wcudaError::kInvalidValue;
  std::memcpy(fs->params.data() + offset, data, bytes);
  return wcudaError::kSuccess;
}

wcudaError Driver::wcuMemAlloc(void** dptr, std::size_t bytes) {
  return context_.allocate(bytes, dptr);
}

wcudaError Driver::wcuMemFree(void* dptr) { return context_.release(dptr); }

wcudaError Driver::wcuMemcpyHtoD(void* dst, const void* src,
                                 std::size_t bytes) {
  cudart::Allocation* alloc = context_.find(dst);
  if (alloc == nullptr) return wcudaError::kInvalidDevicePointer;
  if (bytes > alloc->data.size()) return wcudaError::kInvalidValue;
  std::memcpy(alloc->data.data(), src, bytes);
  h2d_since_launch_ += bytes;
  return wcudaError::kSuccess;
}

wcudaError Driver::wcuMemcpyDtoH(void* dst, const void* src,
                                 std::size_t bytes) {
  cudart::Allocation* alloc = context_.find(const_cast<void*>(src));
  if (alloc == nullptr) return wcudaError::kInvalidDevicePointer;
  if (bytes > alloc->data.size()) return wcudaError::kInvalidValue;
  std::memcpy(dst, alloc->data.data(), bytes);
  return wcudaError::kSuccess;
}

wcudaError Driver::wcuLaunchGrid(WcuFunction f, int grid_w, int grid_h) {
  FunctionState* fs = find_function(f);
  if (fs == nullptr) return wcudaError::kInvalidValue;
  if (fs->block_x == 0) return wcudaError::kInvalidConfiguration;
  if (grid_w <= 0 || grid_h <= 0) return wcudaError::kInvalidConfiguration;

  gpusim::KernelDesc desc = ptx::to_kernel_desc(
      fs->analysis, fs->name, grid_w * grid_h,
      fs->block_x * fs->block_y * fs->block_z);
  if (fs->shared_bytes > 0) {
    desc.resources.shared_mem_per_block =
        static_cast<std::int64_t>(fs->shared_bytes);
  }
  desc.h2d_bytes =
      common::Bytes::from_bytes(static_cast<double>(h2d_since_launch_));
  h2d_since_launch_ = 0;

  gpusim::LaunchPlan plan;
  plan.instances.push_back(gpusim::KernelInstance{desc, launches_, "driver"});
  gpusim::RunResult run;
  try {
    run = engine_.run(plan);
  } catch (const std::exception&) {
    return wcudaError::kLaunchFailure;
  }
  stats_.append(run);
  launches_ += 1;
  return wcudaError::kSuccess;
}

}  // namespace ewc::driver
