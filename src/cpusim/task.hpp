// CPU-side workload description.
#pragma once

#include <string>

#include "common/units.hpp"

namespace ewc::cpusim {

/// One workload instance as the CPU baseline sees it: a job with a total
/// amount of single-core work, an OpenMP parallelism degree, and a shared-
/// cache sensitivity in [0, 1] (how much co-runners hurt it).
struct CpuTask {
  std::string name;
  double core_seconds = 0.0;   ///< total work, seconds on one dedicated core
  int threads = 1;             ///< OpenMP worker count for this instance
  double cache_sensitivity = 0.5;
  int instance_id = 0;
};

}  // namespace ewc::cpusim
