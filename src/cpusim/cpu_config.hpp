// Multicore-CPU baseline configuration (dual-socket Intel Xeon E5520).
//
// The paper's CPU baseline runs N workload instances concurrently and lets
// the OS spread them over 8 cores; its departure from linear scaling comes
// from time slicing (context-switch overhead once instances outnumber cores)
// and shared L2/L3 cache contention. Both mechanisms are modelled explicitly.
#pragma once

#include "common/units.hpp"

namespace ewc::cpusim {

using common::Duration;
using common::Frequency;
using common::Power;

struct CpuConfig {
  int num_cores = 8;  ///< 2 sockets x 4 cores
  Frequency core_clock = Frequency::from_ghz(2.27);

  // OS scheduler (Linux 2.6.31 defaults, CFS-like round robin).
  Duration time_slice = Duration::from_millis(6.0);
  Duration context_switch_cost = Duration::from_micros(30.0);
  /// Extra cache-refill penalty a task pays after being switched back in,
  /// proportional to its working-set pressure (0..1).
  Duration cold_cache_refill = Duration::from_micros(400.0);

  // Shared-cache contention: each co-running instance beyond the first adds
  // this much slowdown, scaled by the workload's cache sensitivity, and
  // saturating once the shared caches are fully thrashed.
  double contention_slope = 0.055;
  double contention_max = 0.65;

  // Whole-node power when the GPU is physically disconnected (paper's CPU
  // measurement setup) plus per-active-core increments.
  Power idle_power = Power::from_watts(133.0);
  Power active_core_power = Power::from_watts(18.5);
};

CpuConfig xeon_e5520();

}  // namespace ewc::cpusim
