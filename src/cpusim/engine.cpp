#include "cpusim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ewc::cpusim {

namespace {
constexpr double kEpsWork = 1e-9;
}

CpuEngine::CpuEngine(CpuConfig cfg) : cfg_(cfg) {}

CpuRunResult CpuEngine::run(const std::vector<CpuTask>& tasks) const {
  for (const auto& t : tasks) {
    if (t.core_seconds < 0.0 || t.threads < 1) {
      throw std::invalid_argument("CpuEngine: malformed task '" + t.name + "'");
    }
  }

  struct Live {
    const CpuTask* task;
    double rem;  ///< core-seconds remaining
  };
  std::vector<Live> live;
  live.reserve(tasks.size());
  CpuRunResult result;
  for (const auto& t : tasks) {
    if (t.core_seconds <= kEpsWork) {
      result.completions.push_back(
          CpuCompletion{t.instance_id, t.name, Duration::zero()});
    } else {
      live.push_back(Live{&t, t.core_seconds});
    }
  }

  const double cores = static_cast<double>(cfg_.num_cores);
  double t_now = 0.0;
  double energy_j = 0.0;
  double busy_core_integral = 0.0;

  while (!live.empty()) {
    // Total runnable threads and the per-thread core share.
    double total_threads = 0.0;
    double sensitivity_sum = 0.0;
    for (const auto& l : live) {
      total_threads += l.task->threads;
      sensitivity_sum += l.task->cache_sensitivity;
    }
    const double busy_cores = std::min(cores, total_threads);

    // Time-slicing efficiency: only bites when threads oversubscribe cores.
    double slice_eff = 1.0;
    if (total_threads > cores) {
      const double slice = cfg_.time_slice.seconds();
      const double overhead = cfg_.context_switch_cost.seconds() +
                              cfg_.cold_cache_refill.seconds() *
                                  (sensitivity_sum / static_cast<double>(live.size()));
      slice_eff = slice / (slice + overhead);
    }

    // Per-instance rates (core-seconds of work drained per wall second).
    double next_dt = std::numeric_limits<double>::infinity();
    std::vector<double> rates(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      const Live& l = live[i];
      const double share =
          std::min(static_cast<double>(l.task->threads),
                   cores * l.task->threads / std::max(cores, total_threads));
      // Shared-cache contention from co-runners, weighted by sensitivity.
      const double co = static_cast<double>(live.size()) - 1.0;
      const double slow =
          std::min(cfg_.contention_max,
                   cfg_.contention_slope * co * l.task->cache_sensitivity);
      rates[i] = share * slice_eff / (1.0 + slow);
      next_dt = std::min(next_dt, l.rem / rates[i]);
    }

    // Advance to the next completion.
    const double dt = next_dt;
    for (std::size_t i = 0; i < live.size(); ++i) {
      live[i].rem -= rates[i] * dt;
    }
    t_now += dt;
    energy_j += (cfg_.idle_power.watts() +
                 cfg_.active_core_power.watts() * busy_cores) *
                dt;
    busy_core_integral += busy_cores * dt;

    for (std::size_t i = 0; i < live.size();) {
      if (live[i].rem <= kEpsWork * std::max(1.0, live[i].task->core_seconds)) {
        result.completions.push_back(CpuCompletion{
            live[i].task->instance_id, live[i].task->name,
            Duration::from_seconds(t_now)});
        live.erase(live.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
  }

  result.makespan = Duration::from_seconds(t_now);
  result.system_energy = Energy::from_joules(energy_j);
  result.avg_system_power =
      t_now > 0.0 ? result.system_energy / result.makespan : Power::zero();
  result.avg_busy_cores = t_now > 0.0 ? busy_core_integral / t_now : 0.0;
  return result;
}

}  // namespace ewc::cpusim
