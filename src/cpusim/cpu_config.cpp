#include "cpusim/cpu_config.hpp"

namespace ewc::cpusim {

CpuConfig xeon_e5520() { return CpuConfig{}; }

}  // namespace ewc::cpusim
