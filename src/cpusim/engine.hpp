// Fluid simulator of the multicore-CPU baseline.
//
// Instances run concurrently; the OS time-slices their threads over the
// cores. Between completions, each instance drains its work at a rate set by
// (a) its thread count, (b) the core share when threads oversubscribe the
// machine (including context-switch and cache-refill overhead), and (c) a
// shared-cache contention factor that grows with the number of co-runners.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "cpusim/cpu_config.hpp"
#include "cpusim/task.hpp"

namespace ewc::cpusim {

using common::Duration;
using common::Energy;
using common::Power;

struct CpuCompletion {
  int instance_id = 0;
  std::string name;
  Duration finish_time = Duration::zero();
};

struct CpuRunResult {
  Duration makespan = Duration::zero();
  Energy system_energy = Energy::zero();
  Power avg_system_power = Power::zero();
  std::vector<CpuCompletion> completions;
  /// Time-averaged number of busy cores.
  double avg_busy_cores = 0.0;
};

class CpuEngine {
 public:
  explicit CpuEngine(CpuConfig cfg = xeon_e5520());

  /// Run all tasks concurrently from t = 0 (the paper's CPU setup: launch N
  /// instances and let the OS schedule them).
  /// @throws std::invalid_argument on tasks with negative work or <1 thread.
  CpuRunResult run(const std::vector<CpuTask>& tasks) const;

  const CpuConfig& config() const { return cfg_; }

 private:
  CpuConfig cfg_;
};

}  // namespace ewc::cpusim
