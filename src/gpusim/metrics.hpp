// Result types produced by the GPU simulator.
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"

namespace ewc::gpusim {

using common::Duration;
using common::Energy;
using common::Power;

/// Device-wide (or per-SM) event totals for the power-relevant components.
/// Compute classes count warp-instructions; memory classes count DRAM
/// transactions; shared/const/register classes count accesses.
struct ComponentCounts {
  double fp = 0.0;
  double int_ops = 0.0;
  double sfu = 0.0;
  double coalesced_tx = 0.0;
  double uncoalesced_tx = 0.0;
  double shared = 0.0;
  double constant = 0.0;
  double reg = 0.0;

  ComponentCounts& operator+=(const ComponentCounts& o) {
    fp += o.fp;
    int_ops += o.int_ops;
    sfu += o.sfu;
    coalesced_tx += o.coalesced_tx;
    uncoalesced_tx += o.uncoalesced_tx;
    shared += o.shared;
    constant += o.constant;
    reg += o.reg;
    return *this;
  }
  ComponentCounts scaled(double f) const {
    ComponentCounts c = *this;
    c.fp *= f;
    c.int_ops *= f;
    c.sfu *= f;
    c.coalesced_tx *= f;
    c.uncoalesced_tx *= f;
    c.shared *= f;
    c.constant *= f;
    c.reg *= f;
    return c;
  }
  double total() const {
    return fp + int_ops + sfu + coalesced_tx + uncoalesced_tx + shared +
           constant + reg;
  }
};

/// A constant-power interval of the run (the meter samples across these).
struct PowerSegment {
  Duration start = Duration::zero();
  Duration length = Duration::zero();
  Power system_power = Power::zero();
};

/// Per-SM execution statistics.
struct SmStats {
  Duration busy = Duration::zero();
  int blocks_executed = 0;
  ComponentCounts counts;
};

/// Completion record for one kernel instance inside a launch plan.
struct InstanceCompletion {
  int instance_id = 0;
  std::string kernel_name;
  Duration finish_time = Duration::zero();  ///< relative to kernel start
};

/// One sample of device occupancy during kernel execution (taken at every
/// fluid event boundary; suitable for timeline plots / CSV export).
struct OccupancySample {
  Duration time = Duration::zero();  ///< relative to kernel start
  int busy_sms = 0;
  int resident_blocks = 0;
  double dram_utilization = 0.0;  ///< fraction of peak during the interval
};

/// Everything a simulated run reports.
struct RunResult {
  Duration total_time = Duration::zero();  ///< transfers + kernel execution
  Duration kernel_time = Duration::zero();
  Duration h2d_time = Duration::zero();
  Duration d2h_time = Duration::zero();

  Energy system_energy = Energy::zero();
  Power avg_system_power = Power::zero();

  std::vector<SmStats> sm_stats;
  ComponentCounts device_counts;
  std::vector<PowerSegment> power_segments;
  std::vector<InstanceCompletion> completions;
  std::vector<OccupancySample> occupancy;

  /// Time-weighted mean GPU temperature delta above ambient (kelvin).
  double avg_temp_delta_kelvin = 0.0;
  /// Mean fraction of peak DRAM bandwidth consumed during kernel execution.
  double avg_dram_utilization = 0.0;
  /// Mean fraction of SM issue capacity consumed during kernel execution.
  double avg_sm_utilization = 0.0;

  /// Fluid events the run consumed (every event-loop iteration, including
  /// zero-length dispatch rounds). Part of the golden digests: a change in
  /// event semantics shows up here even when all times/energies agree.
  std::size_t fluid_events = 0;

  // Host-side wall-clock measurements (std::chrono), for the phase-split
  // benchmarks. NOT simulation outputs: excluded from golden digests and
  // from any cross-run comparison.
  double wall_advance_seconds = 0.0;  ///< dispatch + event loop only
  double wall_total_seconds = 0.0;    ///< whole run() call

  /// Merge a subsequent run (serial back-to-back execution). Time-stamped
  /// series (power segments, completions, occupancy samples) are
  /// concatenated with the accumulated offset applied, so the combined
  /// result reads as one timeline starting at the first run.
  void append(const RunResult& next);
};

}  // namespace ewc::gpusim
