// FluidEngine hot path. The simulation state lives in SoA arrays carved from
// a per-run Arena (one allocation per run, zero per event): each SM owns a
// fixed-capacity segment of slots [smi*cap, smi*cap + nres[smi]) whose order
// mirrors the old per-SM resident lists, so every ordered floating-point
// accumulation visits values in exactly the historical order.
//
// Two advance paths share this state (see docs/SIMULATOR.md):
//   * the scalar reference — a faithful transcription of the original branchy
//     per-block loops; golden digests pin it as ground truth;
//   * the SIMD path — branchless elementwise loops and min-reductions under
//     `#pragma omp simd`. Only arithmetic that is EXACT under reordering is
//     vectorized (elementwise ops, min); every ordered sum (DRAM pressure,
//     event/energy accumulation) runs through helpers shared by both paths.
// The two paths are therefore bit-identical by construction; the `golden`
// ctest label enforces it mechanically.
#include "gpusim/engine.hpp"

#include "common/rng.hpp"
#include "gpusim/arena.hpp"
#include "gpusim/simd.hpp"
#include "obs/tracer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#if !defined(EWC_SIMD_DISABLED) && (defined(__GNUC__) || defined(__clang__))
#define EWC_PRAGMA_SIMD _Pragma("omp simd")
#define EWC_PRAGMA_SIMD_REDUCE(clause) _Pragma(clause)
#else
#define EWC_PRAGMA_SIMD
#define EWC_PRAGMA_SIMD_REDUCE(clause)
#endif

namespace ewc::gpusim {

namespace {

#ifdef EWC_PHASE_PROF
struct PhaseProf {
  double acc[10] = {};
  static constexpr const char* kNames[10] = {
      "setup",  "rates",       "pressure", "min_dt",   "drain",
      "accum",  "completions", "dispatch", "assemble", "other"};
  ~PhaseProf() {
    for (int i = 0; i < 10; ++i) {
      std::fprintf(stderr, "phase %-12s %10.3f ms\n", kNames[i], acc[i] * 1e3);
    }
  }
};
PhaseProf g_prof;
#define PROF_DECL auto prof_t0 = std::chrono::steady_clock::now()
#define PROF_ADD(idx)                                                \
  do {                                                               \
    const auto prof_now = std::chrono::steady_clock::now();          \
    g_prof.acc[idx] +=                                               \
        std::chrono::duration<double>(prof_now - prof_t0).count();   \
    prof_t0 = prof_now;                                              \
  } while (0)
#else
#define PROF_DECL \
  do {            \
  } while (0)
#define PROF_ADD(idx) \
  do {                \
  } while (0)
#endif

constexpr double kEpsCycles = 1e-6;
constexpr double kEpsBytes = 1e-6;
constexpr double kRegReadsPerInst = 3.0;  // 2 reads + 1 write per ALU op

/// Number of event channels accumulated per slot (the ComponentCounts
/// channels): 6 compute-cycle densities then 2 DRAM-byte densities. The
/// per-slot density row is one cache line, so the per-event accumulation
/// vectorizes ACROSS CHANNELS while each channel's ordered sum still visits
/// slots in ascending slot order (bit-exact on both advance paths).
constexpr int kChannels = 8;

/// Per-instance values precomputed once per run. No std::string member:
/// kernel names stay in the run-local distinct-name table (name_id indexes
/// it), so building statics allocates nothing per instance.
struct KernelStatic {
  int name_id = 0;  ///< dense id over distinct kernel names in the plan
  int warps = 0;
  int threads = 0;
  std::int64_t regs_per_block = 0;
  std::int64_t smem_per_block = 0;

  double comp_per_warp = 0.0;   ///< issue cycles
  double stall_per_warp = 0.0;  ///< barrier-stall cycles (unshared latency)
  double mem_per_warp = 0.0;    ///< bytes
  double per_warp_mem_cap = 0.0;  ///< bytes / second
  double inv_per_warp_cap = 0.0;  ///< 1 / per_warp_mem_cap (0 when cap 0)
  double cap_warps = 0.0;  ///< per_warp_mem_cap * warps (block demand)
  double cap_warps_eff = 0.0;  ///< cap_warps * dram_efficiency

  /// Block event densities premultiplied by warps: events per drained
  /// compute-cycle (channels 0-5) / per drained DRAM byte (channels 6-7).
  alignas(64) double dens[kChannels] = {};
  /// Nominal whole-block event totals (density * full demand): credited to
  /// the SM's counters when the block completes.
  double block_totals[kChannels] = {};

  int blocks_remaining = 0;
  /// Dense id over distinct per-slot CONSTANT sets (warps, caps, densities):
  /// instances with identical constants share one id, which lets place()
  /// skip re-writing a slot whose previous occupant had the same constants.
  int const_id = 0;
};

KernelStatic make_static(const DeviceConfig& dev, const KernelDesc& k) {
  KernelStatic s;
  s.warps = k.warps_per_block(dev);
  s.threads = k.threads_per_block;
  s.regs_per_block = static_cast<std::int64_t>(k.resources.registers_per_thread) *
                     k.threads_per_block;
  s.smem_per_block = k.resources.shared_mem_per_block;
  s.comp_per_warp = k.warp_compute_cycles(dev);
  s.stall_per_warp = k.warp_stall_cycles(dev);
  s.mem_per_warp = k.warp_mem_bytes(dev);

  const double latency_s =
      k.effective_mem_latency_cycles(dev) / dev.shader_clock.hertz();
  s.per_warp_mem_cap =
      k.effective_mlp(dev) * k.avg_tx_bytes(dev) / latency_s;
  s.inv_per_warp_cap =
      s.per_warp_mem_cap > 0.0 ? 1.0 / s.per_warp_mem_cap : 0.0;
  s.cap_warps = s.per_warp_mem_cap * s.warps;
  s.cap_warps_eff = s.cap_warps * k.dram_efficiency(dev);

  const double w = static_cast<double>(s.warps);
  if (s.comp_per_warp > 0.0) {
    const auto& m = k.mix;
    s.dens[0] = m.fp_insts / s.comp_per_warp * w;
    s.dens[1] = m.int_insts / s.comp_per_warp * w;
    s.dens[2] = m.sfu_insts / s.comp_per_warp * w;
    s.dens[3] = m.shared_accesses / s.comp_per_warp * w;
    s.dens[4] = m.const_accesses / s.comp_per_warp * w;
    s.dens[5] = kRegReadsPerInst * m.compute_insts() / s.comp_per_warp * w;
  }
  if (s.mem_per_warp > 0.0) {
    const auto& m = k.mix;
    s.dens[6] = m.coalesced_mem_insts / s.mem_per_warp * w;
    s.dens[7] = m.uncoalesced_mem_insts * dev.warp_size / s.mem_per_warp * w;
  }
  for (int ch = 0; ch < kChannels; ++ch) {
    s.block_totals[ch] =
        s.dens[ch] * (ch < 6 ? s.comp_per_warp : s.mem_per_warp);
  }
  s.blocks_remaining = k.num_blocks;
  return s;
}

/// SoA simulation state. Per-slot arrays are indexed (SM, resident slot):
/// slot i = smi*cap + r with r < nres[smi]. All pointers live in the
/// per-run Arena.
///
/// INVARIANT (inert slots): unoccupied slots (r >= nres[smi], including the
/// padding up to `padded`) hold exact 0.0 in every demand, rate, and drain
/// field, which makes them invisible to every full-range pass — they add
/// +0.0 to ordered sums (a bitwise no-op for the non-negative accumulators
/// here), contribute only infinity sentinels to the min-dt reduction, and
/// drain 0 of 0. The SIMD kernels can therefore sweep the whole
/// [0, padded) range in single long loops with no per-SM bounds.
struct Soa {
  int num_sms = 0;
  int cap = 0;     ///< max_blocks_per_sm: slots per SM segment
  int total = 0;   ///< num_sms * cap
  int padded = 0;  ///< total rounded up to a multiple of kChannels

  // Per-slot dynamic state.
  double* comp_rem = nullptr;   ///< issue cycles per warp
  double* stall_rem = nullptr;  ///< barrier-stall cycles per warp
  double* mem_rem = nullptr;    ///< bytes per warp
  double* comp_rate = nullptr;  ///< cycles / s per warp (per event)
  double* inv_comp_rate = nullptr;  ///< 1 / comp_rate (0 when rate is 0)
  double* mem_rate = nullptr;   ///< bytes / s per warp (per event)
  double* dc = nullptr;         ///< cycles drained this event (scratch)
  double* db = nullptr;         ///< bytes drained this event (scratch)

  // Per-slot constants, denormalized from KernelStatic for contiguity.
  double* per_warp_cap = nullptr;
  double* inv_per_warp_cap = nullptr;  ///< 1 / per_warp_cap (0 when cap 0)
  double* cap_warps = nullptr;
  double* eff_cap = nullptr;  ///< cap_warps * dram_efficiency
  double* warps_d = nullptr;
  double* dens = nullptr;  ///< kChannels-wide premultiplied density rows
  int* inst = nullptr;
  int* block_id = nullptr;  ///< grid-order block index (tracing identity)
  int* warps_i = nullptr;

  // Per-SM occupancy and resources.
  int* nres = nullptr;
  int* threads_used = nullptr;
  int* warps_res = nullptr;
  std::int64_t* regs_used = nullptr;
  std::int64_t* smem_used = nullptr;

  /// const_id + 1 of the constants currently written to the slot (0: none).
  /// Constants survive vacate(), so a slot re-used by a same-constants block
  /// skips 6 double stores + the density-row copy on place().
  int* brand = nullptr;

  // Scratch: distinct-kernel epoch stamps, kRandom candidate list, the
  // per-SM completed-slot tally from the drain sweep / completion pre-scan,
  // and the per-SM fair-share compute rate pair from the SIMD rates sweep
  // (the SIMD path never materializes per-slot rate arrays: the drain sweep
  // recomputes each slot's rate from these with the identical expressions).
  std::uint64_t* name_stamp = nullptr;
  int* sm_candidates = nullptr;
  int* sm_ndone = nullptr;
  double* sm_comp_rate = nullptr;
  double* sm_inv_comp_rate = nullptr;

  int slot(int smi, int r) const { return smi * cap + r; }

  void place(int smi, const KernelStatic& st, int instance, int blk_id) {
    const int i = slot(smi, nres[smi]);
    comp_rem[i] = st.comp_per_warp;
    stall_rem[i] = st.stall_per_warp;
    mem_rem[i] = st.mem_per_warp;
    if (brand[i] != st.const_id + 1) {
      brand[i] = st.const_id + 1;
      per_warp_cap[i] = st.per_warp_mem_cap;
      inv_per_warp_cap[i] = st.inv_per_warp_cap;
      cap_warps[i] = st.cap_warps;
      eff_cap[i] = st.cap_warps_eff;
      warps_d[i] = static_cast<double>(st.warps);
      warps_i[i] = st.warps;
      std::memcpy(dens + static_cast<std::size_t>(i) * kChannels, st.dens,
                  sizeof st.dens);
    }
    inst[i] = instance;
    block_id[i] = blk_id;
    nres[smi] += 1;
    threads_used[smi] += st.threads;
    warps_res[smi] += st.warps;
    regs_used[smi] += st.regs_per_block;
    smem_used[smi] += st.smem_per_block;
  }

  /// Copy slot `from` down to slot `to` during the post-completion
  /// compaction pass (to < from, same SM segment). Rates are recomputed
  /// from the demands for every slot at the top of the next event, so only
  /// demands + constants + identity travel.
  void compact_copy(int to, int from) {
    comp_rem[to] = comp_rem[from];
    stall_rem[to] = stall_rem[from];
    mem_rem[to] = mem_rem[from];
    if (brand[to] != brand[from]) {
      brand[to] = brand[from];
      per_warp_cap[to] = per_warp_cap[from];
      inv_per_warp_cap[to] = inv_per_warp_cap[from];
      cap_warps[to] = cap_warps[from];
      eff_cap[to] = eff_cap[from];
      warps_d[to] = warps_d[from];
      warps_i[to] = warps_i[from];
      std::memcpy(dens + static_cast<std::size_t>(to) * kChannels,
                  dens + static_cast<std::size_t>(from) * kChannels,
                  sizeof(double) * kChannels);
    }
    inst[to] = inst[from];
    block_id[to] = block_id[from];
  }

  /// Re-zero a vacated slot's demand and drain state (the inert-slot
  /// invariant; its rates are rewritten from the zero demands next event).
  void vacate(int i) {
    comp_rem[i] = 0.0;
    stall_rem[i] = 0.0;
    mem_rem[i] = 0.0;
    comp_rate[i] = 0.0;
    inv_comp_rate[i] = 0.0;
    mem_rate[i] = 0.0;
    dc[i] = 0.0;
    db[i] = 0.0;
  }

  /// Column-wise vacate of [first, first + count): restores the inert-slot
  /// invariant with one contiguous zero-fill per array (the all-zero bit
  /// pattern is exactly +0.0).
  void vacate_range(int first, int count) {
    const auto bytes = static_cast<std::size_t>(count) * sizeof(double);
    std::memset(comp_rem + first, 0, bytes);
    std::memset(stall_rem + first, 0, bytes);
    std::memset(mem_rem + first, 0, bytes);
    std::memset(comp_rate + first, 0, bytes);
    std::memset(inv_comp_rate + first, 0, bytes);
    std::memset(mem_rate + first, 0, bytes);
    std::memset(dc + first, 0, bytes);
    std::memset(db + first, 0, bytes);
  }

  bool done(int i) const {
    return comp_rem[i] <= kEpsCycles && stall_rem[i] <= kEpsCycles &&
           mem_rem[i] <= kEpsBytes;
  }
};

bool fits(const DeviceConfig& dev, const Soa& s, int smi,
          const KernelStatic& k) {
  if (s.nres[smi] + 1 > dev.max_blocks_per_sm) return false;
  if (s.threads_used[smi] + k.threads > dev.max_threads_per_sm) return false;
  if (s.regs_used[smi] + k.regs_per_block > dev.registers_per_sm) return false;
  if (s.smem_used[smi] + k.smem_per_block > dev.shared_mem_per_sm) return false;
  return true;
}

// ---- advance kernels -------------------------------------------------------
//
// Each stage has two variants computing bit-identical values:
//   * `_scalar` — the reference: branchy per-SM loops bounded by nres, the
//     structure of the original per-block implementation;
//   * `_simd`  — branchless full-range sweeps over [0, padded) slots that
//     lean on the inert-slot invariant, written so the compiler can
//     vectorize them (guards become selects, min-reductions are lane-banked
//     — exact, since FP min commutes without rounding).
// Both variants evaluate the SAME floating-point expressions per slot;
// every ordered accumulation (DRAM pressure, event/energy accrual) visits
// slots in ascending slot order on both paths (see docs/SIMULATOR.md).

void comp_rates_scalar(const Soa& s, double clock, double inv_clock) {
  for (int smi = 0; smi < s.num_sms; ++smi) {
    const int base = smi * s.cap, n = s.nres[smi];
    int with_comp = 0;
    for (int r = 0; r < n; ++r) {
      if (s.comp_rem[base + r] > kEpsCycles) with_comp += s.warps_i[base + r];
    }
    // comp_rem > eps implies with_comp >= that block's warps > 0, so the
    // hoisted fair-share rate is only ever selected when it is well-defined.
    const double rate = with_comp > 0 ? clock / with_comp : 0.0;
    const double inv_rate = with_comp > 0 ? with_comp * inv_clock : 0.0;
    for (int r = 0; r < n; ++r) {
      const int i = base + r;
      if (s.comp_rem[i] > kEpsCycles) {
        s.comp_rate[i] = rate;
        s.inv_comp_rate[i] = inv_rate;
      } else {
        s.comp_rate[i] = 0.0;
        s.inv_comp_rate[i] = 0.0;
      }
    }
  }
}

/// Device-wide DRAM demand. SHARED by construction: both paths call this one
/// helper, and its sums are HAND-BANKED over kChannels lanes (lane l owns
/// slots i ≡ l mod kChannels; lanes fold in ascending order at the end).
/// The banked association is fixed in source, so the result is bit-identical
/// whether or not the compiler vectorizes the loop — which makes the helper
/// safe to share across build flavours. Inert slots select an exact +0.0.
/// When the plan has a single distinct kernel name the distinct-kernel count
/// needs no stamp scan: it is 1 exactly when any DRAM demand is live.
struct MemPressure {
  double total_cap = 0.0;
  double eff_weighted = 0.0;
  int distinct_kernels = 0;
};

MemPressure mem_pressure(const Soa& s, const KernelStatic* statics,
                         bool single_name, std::uint64_t epoch) {
  const double* __restrict mem_rem = s.mem_rem;
  const double* __restrict cap_warps = s.cap_warps;
  const double* __restrict eff_cap = s.eff_cap;
  double cap_lane[kChannels] = {};
  double eff_lane[kChannels] = {};
  // Live slots only: each slot keeps its global banked lane (j mod
  // kChannels) and lanes still see their slots in ascending order, so
  // skipping the inert slots — which select an exact +0.0, a bitwise no-op —
  // leaves every lane sum unchanged.
  for (int smi = 0; smi < s.num_sms; ++smi) {
    const int base = smi * s.cap;
    const int n = s.nres[smi];
    for (int r = 0; r < n; ++r) {
      const int j = base + r;
      const bool live = mem_rem[j] > kEpsBytes;
      const int l = j % kChannels;
      cap_lane[l] += live ? cap_warps[j] : 0.0;
      eff_lane[l] += live ? eff_cap[j] : 0.0;
    }
  }
  MemPressure mp;
  for (int l = 0; l < kChannels; ++l) {
    mp.total_cap += cap_lane[l];
    mp.eff_weighted += eff_lane[l];
  }
  if (single_name) {
    mp.distinct_kernels = mp.total_cap > 0.0 ? 1 : 0;
    return mp;
  }
  for (int smi = 0; smi < s.num_sms; ++smi) {
    const int base = smi * s.cap, n = s.nres[smi];
    for (int r = 0; r < n; ++r) {
      const int i = base + r;
      if (s.mem_rem[i] > kEpsBytes) {
        const int nid = statics[s.inst[i]].name_id;
        if (s.name_stamp[nid] != epoch) {
          s.name_stamp[nid] = epoch;
          mp.distinct_kernels += 1;
        }
      }
    }
  }
  return mp;
}

void mem_rates_scalar(const Soa& s, double mem_scale) {
  for (int smi = 0; smi < s.num_sms; ++smi) {
    const int base = smi * s.cap, n = s.nres[smi];
    for (int r = 0; r < n; ++r) {
      const int i = base + r;
      s.mem_rate[i] =
          (s.mem_rem[i] > kEpsBytes) ? s.per_warp_cap[i] * mem_scale : 0.0;
    }
  }
}

// Earliest demand completion. Division-free on both paths: each candidate
// multiplies the remaining demand by a precomputed reciprocal rate
// (inv_comp_rate from the rates pass, inv_clock per run,
// inv_per_warp_cap * inv_mem_scale for the DRAM term). Rates are nonzero
// exactly when the matching demand exceeds its epsilon, so the rate>0
// select alone reproduces the guard conditions; every reciprocal is finite
// (0 when the true rate is 0), so neither NaN nor a spurious candidate can
// appear. Vacated slots contribute only infinities.
double min_dt_scalar(const Soa& s, double inv_clock, double inv_mem_scale) {
  double dt = std::numeric_limits<double>::infinity();
  for (int smi = 0; smi < s.num_sms; ++smi) {
    const int base = smi * s.cap, n = s.nres[smi];
    for (int r = 0; r < n; ++r) {
      const int i = base + r;
      if (s.comp_rate[i] > 0.0) {
        dt = std::min(dt, s.comp_rem[i] * s.inv_comp_rate[i]);
      }
      // Barrier stalls elapse at wall-clock rate, hidden under nothing.
      if (s.stall_rem[i] > kEpsCycles) {
        dt = std::min(dt, s.stall_rem[i] * inv_clock);
      }
      if (s.mem_rate[i] > 0.0) {
        dt = std::min(dt,
                      s.mem_rem[i] * s.inv_per_warp_cap[i] * inv_mem_scale);
      }
    }
  }
  return dt;
}

void drain_scalar(const Soa& s, double dt, double clock) {
  for (int smi = 0; smi < s.num_sms; ++smi) {
    const int base = smi * s.cap, n = s.nres[smi];
    for (int r = 0; r < n; ++r) {
      const int i = base + r;
      double vdc = 0.0, vdb = 0.0;
      if (dt > 0.0 && s.comp_rate[i] > 0.0) {
        vdc = std::min(s.comp_rem[i], s.comp_rate[i] * dt);
        s.comp_rem[i] -= vdc;
      }
      if (dt > 0.0 && s.stall_rem[i] > kEpsCycles) {
        s.stall_rem[i] = std::max(0.0, s.stall_rem[i] - clock * dt);
      }
      if (dt > 0.0 && s.mem_rate[i] > 0.0) {
        vdb = std::min(s.mem_rem[i], s.mem_rate[i] * dt);
        s.mem_rem[i] -= vdb;
      }
      s.dc[i] = vdc;
      s.db[i] = vdb;
    }
  }
}

/// Per-event channel accrual. SHARED by both paths (one helper, one
/// codegen): channel ch's ordered sum visits slots in ascending order; the
/// kChannels-wide inner loop vectorizes ACROSS channels, which leaves each
/// channel's add order untouched. Inert slots have dc == db == 0 and
/// contribute exact +0.0 no-ops.
struct IntervalAccum {
  alignas(64) double ch[kChannels] = {};
  double bytes = 0.0;
};

void accumulate_interval(const Soa& s, IntervalAccum& acc) {
  const double* __restrict dc = s.dc;
  const double* __restrict db = s.db;
  const double* __restrict dens = s.dens;
  const double* __restrict wd = s.warps_d;
  double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
  double c4 = 0.0, c5 = 0.0, c6 = 0.0, c7 = 0.0;
  // Hand-banked byte total (lane l owns slots i ≡ l mod kChannels, lanes
  // fold in order below): fixed association in source, so the value is the
  // same whether or not this loop vectorizes.
  double bl[kChannels] = {};
  for (int i = 0; i < s.padded; i += kChannels) {
    EWC_PRAGMA_SIMD
    for (int l = 0; l < kChannels; ++l) {
      bl[l] += db[i + l] * wd[i + l];
    }
  }
  for (int i = 0; i < s.total; ++i) {
    const double vdc = dc[i];
    const double vdb = db[i];
    const double* __restrict row = dens + static_cast<std::size_t>(i) * kChannels;
    c0 += vdc * row[0];
    c1 += vdc * row[1];
    c2 += vdc * row[2];
    c3 += vdc * row[3];
    c4 += vdc * row[4];
    c5 += vdc * row[5];
    c6 += vdb * row[6];
    c7 += vdb * row[7];
  }
  acc.ch[0] = c0;
  acc.ch[1] = c1;
  acc.ch[2] = c2;
  acc.ch[3] = c3;
  acc.ch[4] = c4;
  acc.ch[5] = c5;
  acc.ch[6] = c6;
  acc.ch[7] = c7;
  for (int l = 0; l < kChannels; ++l) acc.bytes += bl[l];
}

// ---- fused SIMD sweeps -----------------------------------------------------
//
// The SIMD path's event cost is pass overhead, not arithmetic: at realistic
// occupancies an event touches a few hundred slots, so six separate sweeps
// (rates, DRAM rates, min-dt, drain, accrual, completion scan) cost more in
// loads/stores than in FLOPs. The fused sweeps below collapse them to two
// passes while evaluating THE SAME per-slot expressions as the scalar
// kernels above, in the same order — parity is unchanged (and mechanically
// enforced by the golden/differential tests).

/// Fused comp_rates + mem_rates + min_dt: one pass over each SM's LIVE
/// slots (inert slots would only contribute 0 warps and +inf candidates, so
/// skipping them cannot change any value). The min folds through a single
/// `reduction(min:)` accumulator: FP min is exact under any reordering, so
/// the compiler is free to vectorize the reduction without affecting the
/// result — this is the one reduction the golden contract lets the
/// vectorizer reassociate. No per-slot rate array is written: the fair-share
/// pair is stored per SM (sm_comp_rate / sm_inv_comp_rate) and the drain
/// sweep re-derives each slot's rate from it with the identical selects.
double rates_and_min_dt_simd(const Soa& s, double clock, double inv_clock,
                             double mem_scale, double inv_mem_scale) {
  const double* __restrict comp_rem = s.comp_rem;
  const double* __restrict stall_rem = s.stall_rem;
  const double* __restrict mem_rem = s.mem_rem;
  const double* __restrict per_warp_cap = s.per_warp_cap;
  const double* __restrict inv_per_warp_cap = s.inv_per_warp_cap;
  const int* __restrict warps_i = s.warps_i;
  const double inf = std::numeric_limits<double>::infinity();
  double dt = inf;
  for (int smi = 0; smi < s.num_sms; ++smi) {
    const int base = smi * s.cap;
    const int n = s.nres[smi];
    if (n == 0) continue;
    int with_comp = 0;
    EWC_PRAGMA_SIMD_REDUCE("omp simd reduction(+ : with_comp)")
    for (int r = 0; r < n; ++r) {
      with_comp += comp_rem[base + r] > kEpsCycles ? warps_i[base + r] : 0;
    }
    const double rate = with_comp > 0 ? clock / with_comp : 0.0;
    const double inv_rate = with_comp > 0 ? with_comp * inv_clock : 0.0;
    s.sm_comp_rate[smi] = rate;
    s.sm_inv_comp_rate[smi] = inv_rate;
    EWC_PRAGMA_SIMD_REDUCE("omp simd reduction(min : dt)")
    for (int r = 0; r < n; ++r) {
      const int j = base + r;
      const bool active = comp_rem[j] > kEpsCycles;
      const double cr = active ? rate : 0.0;
      const double icr = active ? inv_rate : 0.0;
      const double mr =
          mem_rem[j] > kEpsBytes ? per_warp_cap[j] * mem_scale : 0.0;
      const double c = cr > 0.0 ? comp_rem[j] * icr : inf;
      const double st =
          stall_rem[j] > kEpsCycles ? stall_rem[j] * inv_clock : inf;
      const double m = mr > 0.0
                           ? mem_rem[j] * inv_per_warp_cap[j] * inv_mem_scale
                           : inf;
      dt = std::min(dt, std::min(c, std::min(st, m)));
    }
  }
  return dt;
}


/// Fused drain + channel accrual + per-SM completion tally, over each SM's
/// LIVE slots only (inert slots drain 0 of 0 and accrue exact +0.0 — a
/// bitwise no-op for these non-negative accumulators — so skipping them
/// cannot change any value). Evaluates the drain_scalar expressions
/// branchlessly (rates are 0 exactly where the guards would skip, so the
/// unguarded min() drains an exact 0), feeds each vdc/vdb straight into the
/// accumulators accumulate_interval would read from dc/db — same
/// per-channel order (ascending slot), same banked byte lanes (lane = slot
/// % kChannels) — and counts post-drain done() slots per SM so the
/// completion scan can skip untouched SMs. dc/db are not written: nothing
/// reads them on this path.
/// Returns the number of slots whose DRAM demand finished (crossed from
/// live to <= eps) during this drain: while that stays 0 — and completions
/// / dispatch leave residency untouched — the live mem set is unchanged, so
/// the previous event's MemPressure totals remain bit-for-bit valid (they
/// sum CONSTANT cap/eff values selected by liveness, not the drained
/// amounts).
int drain_accum_simd(const Soa& s, double dt, double clock, double mem_scale,
                     IntervalAccum& acc, int* __restrict sm_ndone) {
  double* __restrict comp_rem = s.comp_rem;
  double* __restrict stall_rem = s.stall_rem;
  double* __restrict mem_rem = s.mem_rem;
  const double* __restrict per_warp_cap = s.per_warp_cap;
  const double* __restrict dens = s.dens;
  const double* __restrict wd = s.warps_d;
  double c0 = 0.0, c1 = 0.0, c2 = 0.0, c3 = 0.0;
  double c4 = 0.0, c5 = 0.0, c6 = 0.0, c7 = 0.0;
  double bl[kChannels] = {};
  int mem_crossings = 0;
  for (int smi = 0; smi < s.num_sms; ++smi) {
    const int base = smi * s.cap;
    const int n = s.nres[smi];
    sm_ndone[smi] = 0;
    if (n == 0) continue;
    const double rate = s.sm_comp_rate[smi];
    int ndone = 0;
    for (int r = 0; r < n; ++r) {
      const int j = base + r;
      // Re-derived rates, identical selects/products to the rates sweep
      // (comp_rem/mem_rem are still pre-drain here).
      const double cr = comp_rem[j] > kEpsCycles ? rate : 0.0;
      const double mr =
          mem_rem[j] > kEpsBytes ? per_warp_cap[j] * mem_scale : 0.0;
      const double vdc = std::min(comp_rem[j], cr * dt);
      comp_rem[j] -= vdc;
      const double st = stall_rem[j];
      const double drained = st - clock * dt;
      stall_rem[j] = st > kEpsCycles ? (drained > 0.0 ? drained : 0.0) : st;
      const double vdb = std::min(mem_rem[j], mr * dt);
      mem_rem[j] -= vdb;
      const double* __restrict row =
          dens + static_cast<std::size_t>(j) * kChannels;
      c0 += vdc * row[0];
      c1 += vdc * row[1];
      c2 += vdc * row[2];
      c3 += vdc * row[3];
      c4 += vdc * row[4];
      c5 += vdc * row[5];
      c6 += vdb * row[6];
      c7 += vdb * row[7];
      bl[j % kChannels] += vdb * wd[j];
      mem_crossings += (mr > 0.0 && mem_rem[j] <= kEpsBytes) ? 1 : 0;
      ndone += (comp_rem[j] <= kEpsCycles && stall_rem[j] <= kEpsCycles &&
                mem_rem[j] <= kEpsBytes)
                   ? 1
                   : 0;
    }
    sm_ndone[smi] = ndone;
  }
  acc.ch[0] = c0;
  acc.ch[1] = c1;
  acc.ch[2] = c2;
  acc.ch[3] = c3;
  acc.ch[4] = c4;
  acc.ch[5] = c5;
  acc.ch[6] = c6;
  acc.ch[7] = c7;
  for (int l = 0; l < kChannels; ++l) acc.bytes += bl[l];
  return mem_crossings;
}
}  // namespace

FluidEngine::FluidEngine(DeviceConfig dev, EnergyConfig energy)
    : dev_(dev), energy_(energy) {}

std::size_t FluidEngine::event_budget(std::size_t total_blocks) {
  // Every loop iteration either (a) drives some block's demand (compute,
  // stall or memory) to completion — each of the <= 3 nonzero demands of a
  // block completes in at most 2 + kFpRetrySlack events, because the argmin
  // drain leaves at worst an ulp-scale remainder that shrinks by a factor of
  // ~2^52 per retry — or (b) is a zero-length dispatch round that retires
  // at least one already-finished block (head-of-line blocking can force one
  // such round per block). Hence:
  //   events <= blocks * (kDemandsPerBlock * (2 + retries) + 1 dispatch
  //             round) + slack
  // with constant slack for the first wave and empty-plan edge cases. The
  // old heuristic (6n + 64) sat exactly at the no-retry ceiling; this bound
  // is strictly larger and justified term by term.
  constexpr std::size_t kDemandsPerBlock = 3;
  constexpr std::size_t kEventsPerDemand = 2 + 1;  // completion+retry+slack
  constexpr std::size_t kDispatchRoundsPerBlock = 1;
  return total_blocks *
             (kDemandsPerBlock * kEventsPerDemand + kDispatchRoundsPerBlock) +
         64;
}

RunResult FluidEngine::run(const LaunchPlan& plan) const {
  const auto wall_run_start = std::chrono::steady_clock::now();
  PROF_DECL;
  RunResult result;
  result.sm_stats.resize(static_cast<std::size_t>(dev_.num_sms));
  // Every instance completes exactly once; reserving keeps the completion
  // fast path free of reallocation (and of its string moves).
  result.completions.reserve(plan.instances.size());
  EnergyIntegrator integrator(energy_, energy_.system_idle_with_gpu);
  // Transfers contribute <= 2 segments; each positive-dt event one more.
  integrator.reserve_segments(2 * plan.instances.size() + 16);

  // Sampled once: a mid-run toggle (of tracing or the SIMD path) is not
  // observed, which keeps every check below branch-predictable.
  const bool tracing = obs::Tracer::enabled();
  const bool use_simd = simd_enabled();

  // Precompute statics and validate.
  std::vector<KernelStatic> statics;
  statics.reserve(plan.instances.size());
  std::vector<std::string> names;  // distinct kernel names -> name_id
  std::size_t total_blocks = 0;
  for (const auto& inst : plan.instances) {
    if (inst.desc.num_blocks < 0 || inst.desc.threads_per_block <= 0) {
      throw std::invalid_argument("FluidEngine: malformed kernel '" +
                                  inst.desc.name + "'");
    }
    if (inst.desc.num_blocks > 0 && !inst.desc.block_fits_empty_sm(dev_)) {
      throw std::invalid_argument("FluidEngine: block of '" + inst.desc.name +
                                  "' exceeds SM resources");
    }
    statics.push_back(make_static(dev_, inst.desc));
    auto& st = statics.back();
    const auto found = std::find(names.begin(), names.end(), inst.desc.name);
    st.name_id = static_cast<int>(found - names.begin());
    if (found == names.end()) names.push_back(inst.desc.name);
    // Dedupe slot-constant sets by value (NOT by name: the same name can in
    // principle carry a different desc). O(n^2) over distinct sets only.
    st.const_id = static_cast<int>(statics.size()) - 1;
    for (std::size_t j = 0; j + 1 < statics.size(); ++j) {
      const auto& o = statics[j];
      if (o.warps == st.warps && o.per_warp_mem_cap == st.per_warp_mem_cap &&
          o.inv_per_warp_cap == st.inv_per_warp_cap &&
          o.cap_warps == st.cap_warps && o.cap_warps_eff == st.cap_warps_eff &&
          std::memcmp(o.dens, st.dens, sizeof st.dens) == 0) {
        st.const_id = o.const_id;
        break;
      }
    }
    total_blocks += static_cast<std::size_t>(inst.desc.num_blocks);
  }
  const std::size_t name_count = names.empty() ? 1 : names.size();

  // ---- per-run arena: every simulation-state array in one allocation ----
  // Per-slot arrays are allocated at the PADDED length: the Arena zero-fills,
  // which establishes the inert-slot invariant for the padding lanes the SIMD
  // sweeps touch (padding slots have inst == 0, a valid index, but their
  // demands are 0 so no pass ever dereferences through them).
  const std::size_t slots =
      static_cast<std::size_t>(dev_.num_sms) *
      static_cast<std::size_t>(dev_.max_blocks_per_sm);
  const std::size_t padded =
      (slots + kChannels - 1) / kChannels * kChannels;
  const std::size_t sms = static_cast<std::size_t>(dev_.num_sms);
  const std::size_t ninst = plan.instances.size();
  Arena arena(Arena::need<double>(padded) * 13 +
              Arena::need<double>(padded * kChannels) +
              Arena::need<double>(sms) * 2 +
              Arena::need<int>(padded) * 4 + Arena::need<int>(sms) * 5 +
              Arena::need<int>(sms * ninst) +
              Arena::need<std::int64_t>(sms) * 2 +
              Arena::need<std::uint64_t>(name_count) +
              Arena::need<unsigned char>(name_count));
  Soa soa;
  soa.num_sms = dev_.num_sms;
  soa.cap = dev_.max_blocks_per_sm;
  soa.total = static_cast<int>(slots);
  soa.padded = static_cast<int>(padded);
  soa.comp_rem = arena.alloc<double>(padded);
  soa.stall_rem = arena.alloc<double>(padded);
  soa.mem_rem = arena.alloc<double>(padded);
  soa.comp_rate = arena.alloc<double>(padded);
  soa.inv_comp_rate = arena.alloc<double>(padded);
  soa.mem_rate = arena.alloc<double>(padded);
  soa.dc = arena.alloc<double>(padded);
  soa.db = arena.alloc<double>(padded);
  soa.per_warp_cap = arena.alloc<double>(padded);
  soa.inv_per_warp_cap = arena.alloc<double>(padded);
  soa.cap_warps = arena.alloc<double>(padded);
  soa.eff_cap = arena.alloc<double>(padded);
  soa.warps_d = arena.alloc<double>(padded);
  soa.dens = arena.alloc<double>(padded * kChannels);
  soa.inst = arena.alloc<int>(padded);
  soa.block_id = arena.alloc<int>(padded);
  soa.warps_i = arena.alloc<int>(padded);
  soa.brand = arena.alloc<int>(padded);
  soa.nres = arena.alloc<int>(sms);
  soa.threads_used = arena.alloc<int>(sms);
  soa.warps_res = arena.alloc<int>(sms);
  soa.sm_candidates = arena.alloc<int>(sms);
  soa.sm_ndone = arena.alloc<int>(sms);
  soa.sm_comp_rate = arena.alloc<double>(sms);
  soa.sm_inv_comp_rate = arena.alloc<double>(sms);
  soa.regs_used = arena.alloc<std::int64_t>(sms);
  soa.smem_used = arena.alloc<std::int64_t>(sms);
  soa.name_stamp = arena.alloc<std::uint64_t>(name_count);
  unsigned char* constants_uploaded = arena.alloc<unsigned char>(name_count);
  // Per-(SM, instance) completion tally: the advance loop only increments
  // an int per completed block; the per-SM event counts are assembled once
  // after the loop as tally * block_totals (same totals, fewer FP ops in
  // the hot path).
  int* ncomp = arena.alloc<int>(sms * ninst);

  // ---- host -> device transfers ----
  {
    double h2d_secs = 0.0;
    for (std::size_t i = 0; i < plan.instances.size(); ++i) {
      const auto& inst = plan.instances[i];
      double bytes = inst.desc.h2d_bytes.bytes();
      double cbytes = inst.desc.resources.constant_data.bytes();
      if (cbytes > 0.0) {
        const int nid = statics[i].name_id;
        if (!plan.reuse_constant_data || !constants_uploaded[nid]) {
          constants_uploaded[nid] = 1;
          bytes += cbytes;
        }
      }
      if (bytes > 0.0) {
        h2d_secs += bytes / dev_.pcie_h2d.bytes_per_second() +
                    dev_.transfer_latency.seconds();
      }
    }
    if (h2d_secs > 0.0) {
      integrator.advance(Duration::from_seconds(h2d_secs), ComponentCounts{},
                         /*transfer_active=*/true);
      if (tracing) obs::sim_span("gpusim.h2d", 0.0, h2d_secs, 0);
    }
    result.h2d_time = Duration::from_seconds(h2d_secs);
  }

  // ---- kernel execution (fluid DES) ----
  // Pending blocks are a *virtual* grid-order queue: all blocks of an
  // instance are identical, so a (instance, block-within) cursor replaces
  // the old per-block deque.
  struct PendingCursor {
    std::size_t next_inst = 0;
    int next_block = 0;
    std::size_t remaining = 0;
    int next_block_id = 0;
  } pending;
  pending.remaining = total_blocks;

  for (std::size_t i = 0; i < plan.instances.size(); ++i) {
    if (plan.instances[i].desc.num_blocks == 0) {
      // Empty instances complete immediately.
      result.completions.push_back(InstanceCompletion{
          plan.instances[i].instance_id, names[statics[i].name_id],
          result.h2d_time});
    }
  }
  auto skip_empty = [&] {
    while (pending.next_inst < plan.instances.size() &&
           plan.instances[pending.next_inst].desc.num_blocks == 0) {
      pending.next_inst += 1;
      pending.next_block = 0;
    }
  };
  skip_empty();

  int rr_cursor = 0;
  int resident_count = 0;
  common::Rng dispatch_rng(dev_.dispatch_seed);

  const double h2d_secs = result.h2d_time.seconds();
  double t = 0.0;  // kernel-relative seconds
  // Per-block dispatch times, so completion can emit the block's residency
  // span on its SM's lane.
  std::vector<double> block_dispatched(tracing ? total_blocks : 0, 0.0);

  // Dispatch-probe early exit (the event_budget fix): resources only free
  // on completion, so once the head pending block failed to place, every
  // re-probe before the next completion would rescan all SMs for nothing.
  // free_epoch counts completions; a recorded (head instance, epoch) pair
  // makes those degenerate probes O(1).
  std::uint64_t free_epoch = 0;
  std::uint64_t stalled_epoch = 0;
  int stalled_inst = -1;

  auto dispatch = [&]() {
    // Strict grid-order dispatch. The SM choice follows dispatch_policy;
    // the default round-robin cursor is the GT200 GigaThread behaviour the
    // paper describes (initial round-robin distribution; freed SMs pick up
    // the next untouched block).
    int placed = 0;
    while (pending.remaining > 0) {
      const int head_inst = static_cast<int>(pending.next_inst);
      if (stalled_inst == head_inst && stalled_epoch == free_epoch) break;
      const KernelStatic& st = statics[static_cast<std::size_t>(head_inst)];
      int chosen = -1;
      switch (dev_.dispatch_policy) {
        case DispatchPolicy::kRoundRobin:
          for (int probe = 0; probe < dev_.num_sms; ++probe) {
            int smi = (rr_cursor + probe) % dev_.num_sms;
            if (fits(dev_, soa, smi, st)) {
              chosen = smi;
              break;
            }
          }
          break;
        case DispatchPolicy::kLeastLoadedWarps: {
          int best_warps = 0;
          for (int smi = 0; smi < dev_.num_sms; ++smi) {
            if (!fits(dev_, soa, smi, st)) continue;
            const int w = soa.warps_res[smi];
            if (chosen < 0 || w < best_warps) {
              chosen = smi;
              best_warps = w;
            }
          }
          break;
        }
        case DispatchPolicy::kRandom: {
          int ncand = 0;
          for (int smi = 0; smi < dev_.num_sms; ++smi) {
            if (fits(dev_, soa, smi, st)) soa.sm_candidates[ncand++] = smi;
          }
          if (ncand > 0) {
            chosen = soa.sm_candidates[dispatch_rng.pick_index(
                static_cast<std::size_t>(ncand))];
          }
          break;
        }
      }
      if (chosen < 0) {
        stalled_inst = head_inst;
        stalled_epoch = free_epoch;
        break;
      }
      soa.place(chosen, st, head_inst, pending.next_block_id);
      if (tracing) {
        block_dispatched[static_cast<std::size_t>(pending.next_block_id)] = t;
      }
      pending.next_block += 1;
      pending.next_block_id += 1;
      pending.remaining -= 1;
      if (pending.next_block >=
          plan.instances[pending.next_inst].desc.num_blocks) {
        pending.next_inst += 1;
        pending.next_block = 0;
        skip_empty();
      }
      rr_cursor = (chosen + 1) % dev_.num_sms;
      resident_count += 1;
      placed += 1;
    }
    if (tracing && placed > 0) {
      obs::sim_instant("gpusim.dispatch_wave", h2d_secs + t, 0,
                       "\"blocks\":" + std::to_string(placed) +
                           ",\"pending\":" + std::to_string(pending.remaining));
    }
    return placed;
  };

  // Observable side effects of one block's completion, in residency order:
  // completion tally, residency span, and — when it was the instance's last
  // block — the instance-completion record. Resource counters are the
  // caller's job (subtracted per block on the compaction path, reset
  // wholesale on the all-done path).
  auto complete_block = [&](int smi, int i) {
    const int inst_idx = soa.inst[i];
    KernelStatic& st = statics[static_cast<std::size_t>(inst_idx)];
    ncomp[static_cast<std::size_t>(smi) * ninst +
          static_cast<std::size_t>(inst_idx)] += 1;
    if (tracing) {
      const double t0 =
          block_dispatched[static_cast<std::size_t>(soa.block_id[i])];
      obs::sim_span("block:" + names[static_cast<std::size_t>(st.name_id)],
                    h2d_secs + t0, t - t0, static_cast<std::uint32_t>(smi) + 1);
    }
    if (--st.blocks_remaining == 0) {
      const auto& name = names[static_cast<std::size_t>(st.name_id)];
      result.completions.push_back(InstanceCompletion{
          plan.instances[static_cast<std::size_t>(inst_idx)].instance_id, name,
          result.h2d_time + Duration::from_seconds(t)});
      if (tracing) {
        // Cumulative system energy at this completion: subtracting the
        // previous instance's figure attributes the increment.
        char args[128];
        std::snprintf(
            args, sizeof args,
            "\"instance_id\":%d,\"kernel\":\"%s\",\"cum_energy_j\":%.6f",
            plan.instances[static_cast<std::size_t>(inst_idx)].instance_id,
            obs::json_escape(name).c_str(), integrator.total_energy().joules());
        obs::sim_instant("gpusim.instance_complete", h2d_secs + t,
                         static_cast<std::uint32_t>(smi) + 1, args);
      }
    }
  };

  PROF_ADD(0);
  const auto wall_advance_start = std::chrono::steady_clock::now();
  dispatch();
  PROF_ADD(7);

  const double clock = dev_.shader_clock.hertz();
  const double inv_clock = 1.0 / clock;
  const double peak_bw = dev_.dram_bandwidth.bytes_per_second();
  double dram_util_integral = 0.0;
  double sm_util_integral = 0.0;
  // Bandwidth-saturation tracking: a stretch of events where demanded DRAM
  // bandwidth exceeds what the device can deliver (mem_scale < 1) becomes
  // one "gpusim.bw_saturated" span on lane 0.
  double sat_start = -1.0;
  double sat_min_scale = 1.0;
  int prev_busy_sms = 0;

  const std::size_t max_events = event_budget(total_blocks);
  std::size_t events = 0;
  // One occupancy sample per positive-dt event; sized to the demand-
  // completion term of the budget (dispatch rounds produce no sample).
  result.occupancy.reserve(std::min<std::size_t>(max_events, 4096));

  // DRAM-pressure cache (SIMD path): mem_pressure sums CONSTANT cap/eff
  // values (and counts distinct kernels) over the slots whose DRAM demand
  // is live — nothing in it depends on the demands' magnitudes. The result
  // therefore stays bit-for-bit valid until the live mem set changes: a
  // drain finishes some slot's DRAM demand (the fused sweep counts those
  // crossings), compaction moves live slots across banked lanes, or
  // dispatch places new blocks.
  const bool single_name = names.size() <= 1;
  MemPressure pressure_cache;
  bool pressure_cached = false;

  while (resident_count > 0) {
    if (++events > max_events) {
      throw std::runtime_error(
          "FluidEngine: event budget exceeded (bug): " +
          std::to_string(events) + " events for " +
          std::to_string(total_blocks) + " blocks");
    }

    // -- rates --
    // Compute: fair share of the SM's issue cycles among warps with work.
    // (On the SIMD path the compute rates are produced by the fused sweep
    // below, after mem_scale is known.)
    if (!use_simd) comp_rates_scalar(soa, clock, inv_clock);
    PROF_ADD(1);
    // Memory: proportional share of effective DRAM bandwidth, per-warp cap.
    // Ordered sums + distinct-kernel count: shared scalar helper (the event
    // counter doubles as the distinct-name epoch), skipped when the drain
    // sweep's cached totals are still valid.
    MemPressure mp;
    if (pressure_cached) {
      mp = pressure_cache;
    } else {
      mp = mem_pressure(soa, statics.data(), single_name, events);
      if (use_simd) {
        pressure_cache = mp;
        pressure_cached = true;
      }
    }
    double mem_scale = 1.0;
    if (mp.total_cap > 0.0) {
      double stream_eff = mp.eff_weighted / mp.total_cap;
      double mixing = std::max(
          dev_.min_mixing_efficiency,
          1.0 - dev_.mixing_penalty_per_kernel *
                    (static_cast<double>(mp.distinct_kernels) - 1.0));
      const double eff_bw = peak_bw * stream_eff * mixing;
      mem_scale = std::min(1.0, eff_bw / mp.total_cap);
    }
    PROF_ADD(2);

    // -- rates + next event --
    const double inv_mem_scale = 1.0 / mem_scale;
    double dt;
    if (use_simd) {
      dt = rates_and_min_dt_simd(soa, clock, inv_clock, mem_scale,
                                 inv_mem_scale);
    } else {
      mem_rates_scalar(soa, mem_scale);
      dt = min_dt_scalar(soa, inv_clock, inv_mem_scale);
    }
    if (!std::isfinite(dt)) dt = 0.0;  // only zero-work blocks remain resident
    PROF_ADD(3);

    // -- drain demands, accumulate events & energy --
    // SIMD: one fused sweep drains, accrues the interval's channel sums,
    // tallies post-drain done() slots per SM for the completion scan, and
    // refreshes the pressure cache (valid while residency stays unchanged;
    // multi-name plans still need the distinct-kernel stamp walk).
    IntervalAccum acc;
    if (use_simd) {
      const int mem_crossings =
          drain_accum_simd(soa, dt, clock, mem_scale, acc, soa.sm_ndone);
      if (mem_crossings > 0) pressure_cached = false;
    } else {
      drain_scalar(soa, dt, clock);
    }
    PROF_ADD(4);

    int busy_sms = 0;
    for (int smi = 0; smi < soa.num_sms; ++smi) {
      if (soa.nres[smi] > 0) ++busy_sms;
    }

    if (dt > 0.0) {
      // Ordered accumulation of per-event channel contributions: one helper
      // SHARED by both paths, visiting slots in ascending slot order (the
      // historical per-SM resident order). Per-SM counts are no longer
      // integrated per event — each block's nominal whole-block totals are
      // credited to its SM at completion (they sum to the same thing: total
      // drain equals the block's full demand).
      if (!use_simd) accumulate_interval(soa, acc);
      ComponentCounts interval_events;
      interval_events.fp = acc.ch[0];
      interval_events.int_ops = acc.ch[1];
      interval_events.sfu = acc.ch[2];
      interval_events.shared = acc.ch[3];
      interval_events.constant = acc.ch[4];
      interval_events.reg = acc.ch[5];
      interval_events.coalesced_tx = acc.ch[6];
      interval_events.uncoalesced_tx = acc.ch[7];
      const double bytes_drained = acc.bytes;
      for (int smi = 0; smi < soa.num_sms; ++smi) {
        if (soa.nres[smi] > 0) {
          result.sm_stats[static_cast<std::size_t>(smi)].busy +=
              Duration::from_seconds(dt);
        }
      }

      integrator.advance(Duration::from_seconds(dt), interval_events, false);
      result.device_counts += interval_events;
      dram_util_integral += bytes_drained / peak_bw;  // seconds at full BW
      sm_util_integral += dt * busy_sms / dev_.num_sms;
      if (tracing) {
        const bool saturated = mp.total_cap > 0.0 && mem_scale < 1.0;
        if (saturated) {
          if (sat_start < 0.0) {
            sat_start = t;
            sat_min_scale = mem_scale;
          }
          sat_min_scale = std::min(sat_min_scale, mem_scale);
        } else if (sat_start >= 0.0) {
          char args[64];
          std::snprintf(args, sizeof args, "\"min_scale\":%.4f",
                        sat_min_scale);
          obs::sim_span("gpusim.bw_saturated", h2d_secs + sat_start,
                        t - sat_start, 0, args);
          sat_start = -1.0;
        }
        // Takeover: the tail of the batch collapses onto one SM, the
        // "critical" SM whose last blocks now bound the makespan.
        if (busy_sms == 1 && prev_busy_sms > 1) {
          for (int smi = 0; smi < soa.num_sms; ++smi) {
            if (soa.nres[smi] > 0) {
              obs::sim_instant(
                  "gpusim.critical_sm_takeover", h2d_secs + t,
                  static_cast<std::uint32_t>(smi) + 1,
                  "\"resident_blocks\":" + std::to_string(resident_count));
              break;
            }
          }
        }
        prev_busy_sms = busy_sms;
      }
      t += dt;
      result.occupancy.push_back(OccupancySample{
          Duration::from_seconds(t), busy_sms, resident_count,
          bytes_drained / (peak_bw * dt)});
    }
    PROF_ADD(5);

    // -- completions --
    // One-pass two-pointer compaction per SM segment: survivors slide down
    // (each is copied at most once), completed blocks fire their side
    // effects in residency order — exactly the order the old remove-and-
    // shift loop produced — and the freed tail is re-zeroed to keep the
    // inert-slot invariant.
    for (int smi = 0; smi < soa.num_sms; ++smi) {
      const int base = smi * soa.cap;
      const int n = soa.nres[smi];
      // Pre-scan: count done() live slots (exact comparisons, so
      // build-flavour-safe) and skip SMs with no completion. The SIMD drain
      // sweep already produced the tally; the scalar path counts here.
      int ndone;
      if (use_simd) {
        ndone = soa.sm_ndone[smi];
      } else {
        const double* __restrict crem = soa.comp_rem;
        const double* __restrict srem = soa.stall_rem;
        const double* __restrict mrem = soa.mem_rem;
        ndone = 0;
        for (int r = 0; r < n; ++r) {
          const int i = base + r;
          ndone += (crem[i] <= kEpsCycles && srem[i] <= kEpsCycles &&
                    mrem[i] <= kEpsBytes)
                       ? 1
                       : 0;
        }
      }
      if (ndone == 0) continue;
      if (ndone == n) {
        // Whole-segment completion — the common case when symmetric blocks
        // finish together in a consolidation wave. All residents leave, so
        // the resource counters return to exactly 0 and can be reset
        // wholesale; the observable per-block effects still fire in
        // residency order.
        free_epoch += static_cast<std::uint64_t>(n);
        resident_count -= n;
        soa.threads_used[smi] = 0;
        soa.warps_res[smi] = 0;
        soa.regs_used[smi] = 0;
        soa.smem_used[smi] = 0;
        result.sm_stats[static_cast<std::size_t>(smi)].blocks_executed += n;
        for (int r = 0; r < n; ++r) complete_block(smi, base + r);
        soa.vacate_range(base, n);
        soa.nres[smi] = 0;
        continue;
      }
      int live = 0;
      for (int r = 0; r < n; ++r) {
        const int i = base + r;
        if (!soa.done(i)) {
          if (live != r) soa.compact_copy(base + live, i);
          ++live;
          continue;
        }
        const KernelStatic& st = statics[static_cast<std::size_t>(soa.inst[i])];
        free_epoch += 1;
        resident_count -= 1;
        soa.threads_used[smi] -= st.threads;
        soa.warps_res[smi] -= st.warps;
        soa.regs_used[smi] -= st.regs_per_block;
        soa.smem_used[smi] -= st.smem_per_block;
        result.sm_stats[static_cast<std::size_t>(smi)].blocks_executed += 1;
        complete_block(smi, i);
      }
      if (live != n) {
        soa.vacate_range(base + live, n - live);
        soa.nres[smi] = live;
      }
      // Compaction moved live slots across banked lanes; the cached
      // pressure association no longer matches a fresh sweep. (The all-done
      // path above keeps the cache: it only vacates slots whose pressure
      // contribution was already an exact +0.0.)
      pressure_cached = false;
    }
    PROF_ADD(6);
    if (dispatch() > 0) pressure_cached = false;
    PROF_ADD(7);
  }
  result.fluid_events = events;
  result.wall_advance_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_advance_start)
          .count();

  // Assemble per-SM event counts from the completion tallies: each block
  // contributed its nominal whole-block totals (the interval drains sum to
  // the full demand, so this is the same quantity, aggregated once).
  for (std::size_t smi = 0; smi < sms; ++smi) {
    ComponentCounts& cnt = result.sm_stats[smi].counts;
    for (std::size_t k = 0; k < ninst; ++k) {
      const int tally = ncomp[smi * ninst + k];
      if (tally == 0) continue;
      const double m = static_cast<double>(tally);
      const KernelStatic& st = statics[k];
      cnt.fp += m * st.block_totals[0];
      cnt.int_ops += m * st.block_totals[1];
      cnt.sfu += m * st.block_totals[2];
      cnt.shared += m * st.block_totals[3];
      cnt.constant += m * st.block_totals[4];
      cnt.reg += m * st.block_totals[5];
      cnt.coalesced_tx += m * st.block_totals[6];
      cnt.uncoalesced_tx += m * st.block_totals[7];
    }
  }

  result.kernel_time = Duration::from_seconds(t);
  if (t > 0.0) {
    result.avg_dram_utilization = dram_util_integral / t;
    result.avg_sm_utilization = sm_util_integral / t;
  }

  // ---- device -> host transfers ----
  {
    double d2h_secs = 0.0;
    for (const auto& inst : plan.instances) {
      double bytes = inst.desc.d2h_bytes.bytes();
      if (bytes > 0.0) {
        d2h_secs += bytes / dev_.pcie_d2h.bytes_per_second() +
                    dev_.transfer_latency.seconds();
      }
    }
    if (d2h_secs > 0.0) {
      integrator.advance(Duration::from_seconds(d2h_secs), ComponentCounts{},
                         /*transfer_active=*/true);
    }
    result.d2h_time = Duration::from_seconds(d2h_secs);
  }

  if (tracing) {
    if (sat_start >= 0.0) {
      char args[64];
      std::snprintf(args, sizeof args, "\"min_scale\":%.4f", sat_min_scale);
      obs::sim_span("gpusim.bw_saturated", h2d_secs + sat_start,
                    t - sat_start, 0, args);
    }
    if (t > 0.0) obs::sim_span("gpusim.kernels", h2d_secs, t, 0);
    if (result.d2h_time.seconds() > 0.0) {
      obs::sim_span("gpusim.d2h", h2d_secs + t, result.d2h_time.seconds(), 0);
    }
  }

  result.total_time = integrator.elapsed();
  result.system_energy = integrator.total_energy();
  result.avg_system_power = result.total_time.seconds() > 0.0
                                ? result.system_energy / result.total_time
                                : Power::zero();
  result.power_segments = integrator.segments();
  result.avg_temp_delta_kelvin = integrator.avg_temperature_delta_kelvin();
  if (tracing) {
    char args[96];
    std::snprintf(args, sizeof args,
                  "\"instances\":%zu,\"energy_j\":%.6f",
                  plan.instances.size(), result.system_energy.joules());
    obs::sim_span("gpusim.run", 0.0, result.total_time.seconds(), 0, args,
                  obs::Tracer::current_request_id());
  }
  PROF_ADD(8);
  result.wall_total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_run_start)
          .count();
  return result;
}

RunResult FluidEngine::run_serial(
    const std::vector<KernelInstance>& instances) const {
  RunResult combined;
  combined.sm_stats.resize(static_cast<std::size_t>(dev_.num_sms));
  for (const auto& inst : instances) {
    LaunchPlan plan;
    plan.instances.push_back(inst);
    combined.append(run(plan));
  }
  return combined;
}

}  // namespace ewc::gpusim
