#include "gpusim/engine.hpp"

#include "common/rng.hpp"
#include "obs/tracer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>

namespace ewc::gpusim {

namespace {

constexpr double kEpsCycles = 1e-6;
constexpr double kEpsBytes = 1e-6;
constexpr double kRegReadsPerInst = 3.0;  // 2 reads + 1 write per ALU op

/// Per-instance values precomputed once per run.
struct KernelStatic {
  std::string name;
  int warps = 0;
  int threads = 0;
  std::int64_t regs_per_block = 0;
  std::int64_t smem_per_block = 0;

  double comp_per_warp = 0.0;   ///< issue cycles
  double stall_per_warp = 0.0;  ///< barrier-stall cycles (unshared latency)
  double mem_per_warp = 0.0;    ///< bytes
  double per_warp_mem_cap = 0.0;  ///< bytes / second
  double dram_eff = 1.0;

  // Event densities: events per drained compute-cycle (per warp) and per
  // drained DRAM byte (per warp).
  double fp_per_cycle = 0.0;
  double int_per_cycle = 0.0;
  double sfu_per_cycle = 0.0;
  double shared_per_cycle = 0.0;
  double const_per_cycle = 0.0;
  double reg_per_cycle = 0.0;
  double coal_tx_per_byte = 0.0;
  double uncoal_tx_per_byte = 0.0;

  int blocks_remaining = 0;
};

struct Block {
  int inst = -1;         ///< index into plan.instances / statics
  double comp_rem = 0;   ///< issue cycles per warp
  double stall_rem = 0;  ///< barrier-stall cycles per warp
  double mem_rem = 0;    ///< bytes per warp
  double comp_rate = 0;  ///< cycles / s per warp (recomputed each event)
  double mem_rate = 0;   ///< bytes / s per warp

  bool done() const {
    return comp_rem <= kEpsCycles && stall_rem <= kEpsCycles &&
           mem_rem <= kEpsBytes;
  }
};

struct SmState {
  std::vector<int> resident;  ///< indices into the block array
  int threads_used = 0;
  int nblocks = 0;
  std::int64_t regs_used = 0;
  std::int64_t smem_used = 0;
};

KernelStatic make_static(const DeviceConfig& dev, const KernelDesc& k) {
  KernelStatic s;
  s.name = k.name;
  s.warps = k.warps_per_block(dev);
  s.threads = k.threads_per_block;
  s.regs_per_block = static_cast<std::int64_t>(k.resources.registers_per_thread) *
                     k.threads_per_block;
  s.smem_per_block = k.resources.shared_mem_per_block;
  s.comp_per_warp = k.warp_compute_cycles(dev);
  s.stall_per_warp = k.warp_stall_cycles(dev);
  s.mem_per_warp = k.warp_mem_bytes(dev);
  s.dram_eff = k.dram_efficiency(dev);

  const double latency_s =
      k.effective_mem_latency_cycles(dev) / dev.shader_clock.hertz();
  s.per_warp_mem_cap =
      k.effective_mlp(dev) * k.avg_tx_bytes(dev) / latency_s;

  if (s.comp_per_warp > 0.0) {
    const auto& m = k.mix;
    s.fp_per_cycle = m.fp_insts / s.comp_per_warp;
    s.int_per_cycle = m.int_insts / s.comp_per_warp;
    s.sfu_per_cycle = m.sfu_insts / s.comp_per_warp;
    s.shared_per_cycle = m.shared_accesses / s.comp_per_warp;
    s.const_per_cycle = m.const_accesses / s.comp_per_warp;
    s.reg_per_cycle = kRegReadsPerInst * m.compute_insts() / s.comp_per_warp;
  }
  if (s.mem_per_warp > 0.0) {
    const auto& m = k.mix;
    s.coal_tx_per_byte = m.coalesced_mem_insts / s.mem_per_warp;
    s.uncoal_tx_per_byte =
        m.uncoalesced_mem_insts * dev.warp_size / s.mem_per_warp;
  }
  s.blocks_remaining = k.num_blocks;
  return s;
}

bool fits(const DeviceConfig& dev, const SmState& sm, const KernelStatic& k) {
  if (sm.nblocks + 1 > dev.max_blocks_per_sm) return false;
  if (sm.threads_used + k.threads > dev.max_threads_per_sm) return false;
  if (sm.regs_used + k.regs_per_block > dev.registers_per_sm) return false;
  if (sm.smem_used + k.smem_per_block > dev.shared_mem_per_sm) return false;
  return true;
}

}  // namespace

FluidEngine::FluidEngine(DeviceConfig dev, EnergyConfig energy)
    : dev_(dev), energy_(energy) {}

std::size_t FluidEngine::event_budget(std::size_t total_blocks) {
  // Every loop iteration either (a) drives some block's demand (compute,
  // stall or memory) to completion — each of the <= 3 nonzero demands of a
  // block completes in at most 2 + kFpRetrySlack events, because the argmin
  // drain leaves at worst an ulp-scale remainder that shrinks by a factor of
  // ~2^52 per retry — or (b) is a zero-length dispatch round that retires
  // at least one already-finished block (head-of-line blocking can force one
  // such round per block). Hence:
  //   events <= blocks * (kDemandsPerBlock * (2 + retries) + 1 dispatch
  //             round) + slack
  // with constant slack for the first wave and empty-plan edge cases. The
  // old heuristic (6n + 64) sat exactly at the no-retry ceiling; this bound
  // is strictly larger and justified term by term.
  constexpr std::size_t kDemandsPerBlock = 3;
  constexpr std::size_t kEventsPerDemand = 2 + 1;  // completion+retry+slack
  constexpr std::size_t kDispatchRoundsPerBlock = 1;
  return total_blocks *
             (kDemandsPerBlock * kEventsPerDemand + kDispatchRoundsPerBlock) +
         64;
}

RunResult FluidEngine::run(const LaunchPlan& plan) const {
  RunResult result;
  result.sm_stats.resize(static_cast<std::size_t>(dev_.num_sms));
  EnergyIntegrator integrator(energy_, energy_.system_idle_with_gpu);

  // Sampled once: a mid-run toggle is not observed, which keeps every check
  // below branch-predictable. Simulated-time events land on lane 0
  // (batch-level) or lane 1+sm (per-SM), offset by the caller's
  // SimClockScope.
  const bool tracing = obs::Tracer::enabled();

  // Precompute statics and validate.
  std::vector<KernelStatic> statics;
  statics.reserve(plan.instances.size());
  for (const auto& inst : plan.instances) {
    if (inst.desc.num_blocks < 0 || inst.desc.threads_per_block <= 0) {
      throw std::invalid_argument("FluidEngine: malformed kernel '" +
                                  inst.desc.name + "'");
    }
    if (inst.desc.num_blocks > 0 && !inst.desc.block_fits_empty_sm(dev_)) {
      throw std::invalid_argument("FluidEngine: block of '" + inst.desc.name +
                                  "' exceeds SM resources");
    }
    statics.push_back(make_static(dev_, inst.desc));
  }

  // ---- host -> device transfers ----
  {
    std::set<std::string> constants_uploaded;
    double h2d_secs = 0.0;
    for (const auto& inst : plan.instances) {
      double bytes = inst.desc.h2d_bytes.bytes();
      double cbytes = inst.desc.resources.constant_data.bytes();
      if (cbytes > 0.0) {
        if (!plan.reuse_constant_data ||
            constants_uploaded.insert(inst.desc.name).second) {
          bytes += cbytes;
        }
      }
      if (bytes > 0.0) {
        h2d_secs += bytes / dev_.pcie_h2d.bytes_per_second() +
                    dev_.transfer_latency.seconds();
      }
    }
    if (h2d_secs > 0.0) {
      integrator.advance(Duration::from_seconds(h2d_secs), ComponentCounts{},
                         /*transfer_active=*/true);
      if (tracing) obs::sim_span("gpusim.h2d", 0.0, h2d_secs, 0);
    }
    result.h2d_time = Duration::from_seconds(h2d_secs);
  }

  // ---- kernel execution (fluid DES) ----
  std::vector<Block> blocks;
  std::deque<int> pending;
  for (std::size_t i = 0; i < plan.instances.size(); ++i) {
    const auto& st = statics[i];
    for (int b = 0; b < plan.instances[i].desc.num_blocks; ++b) {
      Block blk;
      blk.inst = static_cast<int>(i);
      blk.comp_rem = st.comp_per_warp;
      blk.stall_rem = st.stall_per_warp;
      blk.mem_rem = st.mem_per_warp;
      pending.push_back(static_cast<int>(blocks.size()));
      blocks.push_back(blk);
    }
    if (plan.instances[i].desc.num_blocks == 0) {
      // Empty instances complete immediately.
      result.completions.push_back(InstanceCompletion{
          plan.instances[i].instance_id, st.name, result.h2d_time});
    }
  }

  std::vector<SmState> sms(static_cast<std::size_t>(dev_.num_sms));
  std::vector<int> block_sm(blocks.size(), -1);
  int rr_cursor = 0;
  int resident_count = 0;
  common::Rng dispatch_rng(dev_.dispatch_seed);

  const double h2d_secs = result.h2d_time.seconds();
  double t = 0.0;  // kernel-relative seconds
  // Per-block dispatch times, so completion can emit the block's residency
  // span on its SM's lane.
  std::vector<double> block_dispatched(tracing ? blocks.size() : 0, 0.0);

  auto resident_warps = [&](const SmState& sm) {
    int w = 0;
    for (int bi : sm.resident) {
      w += statics[static_cast<std::size_t>(blocks[bi].inst)].warps;
    }
    return w;
  };

  auto dispatch = [&]() {
    // Strict grid-order dispatch. The SM choice follows dispatch_policy;
    // the default round-robin cursor is the GT200 GigaThread behaviour the
    // paper describes (initial round-robin distribution; freed SMs pick up
    // the next untouched block).
    int placed = 0;
    while (!pending.empty()) {
      int bi = pending.front();
      const KernelStatic& st = statics[static_cast<std::size_t>(blocks[bi].inst)];
      int chosen = -1;
      switch (dev_.dispatch_policy) {
        case DispatchPolicy::kRoundRobin:
          for (int probe = 0; probe < dev_.num_sms; ++probe) {
            int smi = (rr_cursor + probe) % dev_.num_sms;
            if (fits(dev_, sms[static_cast<std::size_t>(smi)], st)) {
              chosen = smi;
              break;
            }
          }
          break;
        case DispatchPolicy::kLeastLoadedWarps: {
          int best_warps = 0;
          for (int smi = 0; smi < dev_.num_sms; ++smi) {
            const SmState& sm = sms[static_cast<std::size_t>(smi)];
            if (!fits(dev_, sm, st)) continue;
            const int w = resident_warps(sm);
            if (chosen < 0 || w < best_warps) {
              chosen = smi;
              best_warps = w;
            }
          }
          break;
        }
        case DispatchPolicy::kRandom: {
          std::vector<int> candidates;
          for (int smi = 0; smi < dev_.num_sms; ++smi) {
            if (fits(dev_, sms[static_cast<std::size_t>(smi)], st)) {
              candidates.push_back(smi);
            }
          }
          if (!candidates.empty()) {
            chosen = candidates[dispatch_rng.pick_index(candidates.size())];
          }
          break;
        }
      }
      if (chosen < 0) break;
      SmState& sm = sms[static_cast<std::size_t>(chosen)];
      sm.resident.push_back(bi);
      sm.nblocks += 1;
      sm.threads_used += st.threads;
      sm.regs_used += st.regs_per_block;
      sm.smem_used += st.smem_per_block;
      block_sm[static_cast<std::size_t>(bi)] = chosen;
      pending.pop_front();
      rr_cursor = (chosen + 1) % dev_.num_sms;
      resident_count += 1;
      placed += 1;
      if (tracing) block_dispatched[static_cast<std::size_t>(bi)] = t;
    }
    if (tracing && placed > 0) {
      obs::sim_instant("gpusim.dispatch_wave", h2d_secs + t, 0,
                       "\"blocks\":" + std::to_string(placed) +
                           ",\"pending\":" + std::to_string(pending.size()));
    }
  };

  dispatch();

  const double clock = dev_.shader_clock.hertz();
  const double peak_bw = dev_.dram_bandwidth.bytes_per_second();
  double dram_util_integral = 0.0;
  double sm_util_integral = 0.0;
  // Bandwidth-saturation tracking: a stretch of events where demanded DRAM
  // bandwidth exceeds what the device can deliver (mem_scale < 1) becomes
  // one "gpusim.bw_saturated" span on lane 0.
  double sat_start = -1.0;
  double sat_min_scale = 1.0;
  int prev_busy_sms = 0;

  const std::size_t max_events = event_budget(blocks.size());
  std::size_t events = 0;

  while (resident_count > 0) {
    if (++events > max_events) {
      throw std::runtime_error(
          "FluidEngine: event budget exceeded (bug): " +
          std::to_string(events) + " events for " +
          std::to_string(blocks.size()) + " blocks");
    }

    // -- rates --
    // Compute: fair share of the SM's issue cycles among warps with work.
    for (auto& sm : sms) {
      int warps_with_comp = 0;
      for (int bi : sm.resident) {
        if (blocks[bi].comp_rem > kEpsCycles) {
          warps_with_comp += statics[static_cast<std::size_t>(blocks[bi].inst)].warps;
        }
      }
      for (int bi : sm.resident) {
        Block& b = blocks[bi];
        b.comp_rate = (b.comp_rem > kEpsCycles && warps_with_comp > 0)
                          ? clock / warps_with_comp
                          : 0.0;
      }
    }
    // Memory: proportional share of effective DRAM bandwidth, per-warp cap.
    double total_cap = 0.0;
    double eff_weighted = 0.0;
    std::set<std::string> active_kernels;
    for (auto& sm : sms) {
      for (int bi : sm.resident) {
        Block& b = blocks[bi];
        const KernelStatic& st = statics[static_cast<std::size_t>(b.inst)];
        if (b.mem_rem > kEpsBytes) {
          double cap = st.per_warp_mem_cap * st.warps;
          total_cap += cap;
          eff_weighted += cap * st.dram_eff;
          active_kernels.insert(st.name);
        }
      }
    }
    double mem_scale = 1.0;
    double eff_bw = peak_bw;
    if (total_cap > 0.0) {
      double stream_eff = eff_weighted / total_cap;
      double mixing =
          std::max(dev_.min_mixing_efficiency,
                   1.0 - dev_.mixing_penalty_per_kernel *
                             (static_cast<double>(active_kernels.size()) - 1.0));
      eff_bw = peak_bw * stream_eff * mixing;
      mem_scale = std::min(1.0, eff_bw / total_cap);
    }
    for (auto& sm : sms) {
      for (int bi : sm.resident) {
        Block& b = blocks[bi];
        const KernelStatic& st = statics[static_cast<std::size_t>(b.inst)];
        b.mem_rate =
            (b.mem_rem > kEpsBytes) ? st.per_warp_mem_cap * mem_scale : 0.0;
      }
    }

    // -- next event --
    double dt = std::numeric_limits<double>::infinity();
    for (auto& sm : sms) {
      for (int bi : sm.resident) {
        const Block& b = blocks[bi];
        if (b.comp_rem > kEpsCycles && b.comp_rate > 0.0) {
          dt = std::min(dt, b.comp_rem / b.comp_rate);
        }
        // Barrier stalls elapse at wall-clock rate, hidden under nothing.
        if (b.stall_rem > kEpsCycles) {
          dt = std::min(dt, b.stall_rem / clock);
        }
        if (b.mem_rem > kEpsBytes && b.mem_rate > 0.0) {
          dt = std::min(dt, b.mem_rem / b.mem_rate);
        }
      }
    }
    if (!std::isfinite(dt)) dt = 0.0;  // only zero-work blocks remain resident

    // -- drain demands, accumulate events & energy --
    ComponentCounts interval_events;
    double bytes_drained = 0.0;
    int busy_sms = 0;
    for (std::size_t smi = 0; smi < sms.size(); ++smi) {
      SmState& sm = sms[smi];
      if (!sm.resident.empty()) ++busy_sms;
      for (int bi : sm.resident) {
        Block& b = blocks[bi];
        const KernelStatic& st = statics[static_cast<std::size_t>(b.inst)];
        ComponentCounts ev;
        if (dt > 0.0 && b.comp_rate > 0.0) {
          double dc = std::min(b.comp_rem, b.comp_rate * dt);
          b.comp_rem -= dc;
          double warps = st.warps;
          ev.fp += dc * st.fp_per_cycle * warps;
          ev.int_ops += dc * st.int_per_cycle * warps;
          ev.sfu += dc * st.sfu_per_cycle * warps;
          ev.shared += dc * st.shared_per_cycle * warps;
          ev.constant += dc * st.const_per_cycle * warps;
          ev.reg += dc * st.reg_per_cycle * warps;
        }
        if (dt > 0.0 && b.stall_rem > kEpsCycles) {
          b.stall_rem = std::max(0.0, b.stall_rem - clock * dt);
        }
        if (dt > 0.0 && b.mem_rate > 0.0) {
          double db = std::min(b.mem_rem, b.mem_rate * dt);
          b.mem_rem -= db;
          double warps = st.warps;
          ev.coalesced_tx += db * st.coal_tx_per_byte * warps;
          ev.uncoalesced_tx += db * st.uncoal_tx_per_byte * warps;
          bytes_drained += db * warps;
        }
        result.sm_stats[smi].counts += ev;
        interval_events += ev;
      }
      if (dt > 0.0 && !sm.resident.empty()) {
        result.sm_stats[smi].busy += Duration::from_seconds(dt);
      }
    }
    if (dt > 0.0) {
      integrator.advance(Duration::from_seconds(dt), interval_events, false);
      result.device_counts += interval_events;
      dram_util_integral += bytes_drained / peak_bw;  // seconds at full BW
      sm_util_integral += dt * busy_sms / dev_.num_sms;
      if (tracing) {
        const bool saturated = total_cap > 0.0 && mem_scale < 1.0;
        if (saturated) {
          if (sat_start < 0.0) {
            sat_start = t;
            sat_min_scale = mem_scale;
          }
          sat_min_scale = std::min(sat_min_scale, mem_scale);
        } else if (sat_start >= 0.0) {
          char args[64];
          std::snprintf(args, sizeof args, "\"min_scale\":%.4f",
                        sat_min_scale);
          obs::sim_span("gpusim.bw_saturated", h2d_secs + sat_start,
                        t - sat_start, 0, args);
          sat_start = -1.0;
        }
        // Takeover: the tail of the batch collapses onto one SM, the
        // "critical" SM whose last blocks now bound the makespan.
        if (busy_sms == 1 && prev_busy_sms > 1) {
          for (std::size_t smi = 0; smi < sms.size(); ++smi) {
            if (!sms[smi].resident.empty()) {
              obs::sim_instant(
                  "gpusim.critical_sm_takeover", h2d_secs + t,
                  static_cast<std::uint32_t>(smi) + 1,
                  "\"resident_blocks\":" + std::to_string(resident_count));
              break;
            }
          }
        }
        prev_busy_sms = busy_sms;
      }
      t += dt;
      result.occupancy.push_back(OccupancySample{
          Duration::from_seconds(t), busy_sms, resident_count,
          bytes_drained / (peak_bw * dt)});
    }

    // -- completions --
    for (std::size_t smi = 0; smi < sms.size(); ++smi) {
      SmState& sm = sms[smi];
      for (std::size_t r = 0; r < sm.resident.size();) {
        int bi = sm.resident[r];
        Block& b = blocks[bi];
        if (b.done()) {
          KernelStatic& st = statics[static_cast<std::size_t>(b.inst)];
          sm.resident.erase(sm.resident.begin() + static_cast<long>(r));
          sm.nblocks -= 1;
          sm.threads_used -= st.threads;
          sm.regs_used -= st.regs_per_block;
          sm.smem_used -= st.smem_per_block;
          result.sm_stats[smi].blocks_executed += 1;
          resident_count -= 1;
          if (tracing) {
            const double t0 = block_dispatched[static_cast<std::size_t>(bi)];
            obs::sim_span("block:" + st.name, h2d_secs + t0, t - t0,
                          static_cast<std::uint32_t>(smi) + 1);
          }
          if (--st.blocks_remaining == 0) {
            result.completions.push_back(InstanceCompletion{
                plan.instances[static_cast<std::size_t>(b.inst)].instance_id,
                st.name, result.h2d_time + Duration::from_seconds(t)});
            if (tracing) {
              // Cumulative system energy at this completion: subtracting the
              // previous instance's figure attributes the increment.
              char args[128];
              std::snprintf(
                  args, sizeof args,
                  "\"instance_id\":%d,\"kernel\":\"%s\",\"cum_energy_j\":%.6f",
                  plan.instances[static_cast<std::size_t>(b.inst)].instance_id,
                  obs::json_escape(st.name).c_str(),
                  integrator.total_energy().joules());
              obs::sim_instant("gpusim.instance_complete", h2d_secs + t,
                               static_cast<std::uint32_t>(smi) + 1, args);
            }
          }
        } else {
          ++r;
        }
      }
    }
    dispatch();
  }

  result.kernel_time = Duration::from_seconds(t);
  if (t > 0.0) {
    result.avg_dram_utilization = dram_util_integral / t;
    result.avg_sm_utilization = sm_util_integral / t;
  }

  // ---- device -> host transfers ----
  {
    double d2h_secs = 0.0;
    for (const auto& inst : plan.instances) {
      double bytes = inst.desc.d2h_bytes.bytes();
      if (bytes > 0.0) {
        d2h_secs += bytes / dev_.pcie_d2h.bytes_per_second() +
                    dev_.transfer_latency.seconds();
      }
    }
    if (d2h_secs > 0.0) {
      integrator.advance(Duration::from_seconds(d2h_secs), ComponentCounts{},
                         /*transfer_active=*/true);
    }
    result.d2h_time = Duration::from_seconds(d2h_secs);
  }

  if (tracing) {
    if (sat_start >= 0.0) {
      char args[64];
      std::snprintf(args, sizeof args, "\"min_scale\":%.4f", sat_min_scale);
      obs::sim_span("gpusim.bw_saturated", h2d_secs + sat_start,
                    t - sat_start, 0, args);
    }
    if (t > 0.0) obs::sim_span("gpusim.kernels", h2d_secs, t, 0);
    if (result.d2h_time.seconds() > 0.0) {
      obs::sim_span("gpusim.d2h", h2d_secs + t, result.d2h_time.seconds(), 0);
    }
  }

  result.total_time = integrator.elapsed();
  result.system_energy = integrator.total_energy();
  result.avg_system_power = result.total_time.seconds() > 0.0
                                ? result.system_energy / result.total_time
                                : Power::zero();
  result.power_segments = integrator.segments();
  result.avg_temp_delta_kelvin = integrator.avg_temperature_delta_kelvin();
  if (tracing) {
    char args[96];
    std::snprintf(args, sizeof args,
                  "\"instances\":%zu,\"energy_j\":%.6f",
                  plan.instances.size(), result.system_energy.joules());
    obs::sim_span("gpusim.run", 0.0, result.total_time.seconds(), 0, args,
                  obs::Tracer::current_request_id());
  }
  return result;
}

RunResult FluidEngine::run_serial(
    const std::vector<KernelInstance>& instances) const {
  RunResult combined;
  combined.sm_stats.resize(static_cast<std::size_t>(dev_.num_sms));
  for (const auto& inst : instances) {
    LaunchPlan plan;
    plan.instances.push_back(inst);
    combined.append(run(plan));
  }
  return combined;
}

}  // namespace ewc::gpusim
