// Ground-truth energy integration for the simulator.
//
// Implements the paper's Eq. 10 decomposition from the *hardware* side:
//   P_system = P_idle(system, incl. GPU static) + P_T(dT) + P_dyn(events)
// P_dyn comes from per-event energies; P_T follows a first-order RC thermal
// model driven by P_dyn. The fitted power model (src/power) must recover this
// behaviour from measurements alone.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "gpusim/device_config.hpp"
#include "gpusim/metrics.hpp"

namespace ewc::gpusim {

class EnergyIntegrator {
 public:
  EnergyIntegrator(const EnergyConfig& cfg, Power system_idle);

  /// Dynamic GPU power for a device-wide event-rate vector (events/second).
  Power dynamic_power(const ComponentCounts& rates_per_second) const;

  /// Advance simulated time by dt during which the device generated `events`
  /// (totals over the interval) and optionally kept the host link busy.
  void advance(Duration dt, const ComponentCounts& events,
               bool transfer_active = false);

  /// Advance with the device fully idle.
  void advance_idle(Duration dt) { advance(dt, ComponentCounts{}, false); }

  Energy total_energy() const { return energy_; }
  Duration elapsed() const { return elapsed_; }
  double temperature_delta_kelvin() const { return temp_delta_; }
  /// Time-weighted mean temperature delta over the run (kelvin).
  double avg_temperature_delta_kelvin() const {
    return elapsed_.seconds() > 0.0 ? temp_integral_ / elapsed_.seconds() : 0.0;
  }
  const std::vector<PowerSegment>& segments() const { return segments_; }

  /// Capacity hint from callers that know roughly how many advance() calls
  /// are coming (FluidEngine sizes this from the plan), so segment growth
  /// never reallocates inside the event loop.
  void reserve_segments(std::size_t n) { segments_.reserve(n); }

 private:
  EnergyConfig cfg_;
  Power idle_;
  Energy energy_ = Energy::zero();
  Duration elapsed_ = Duration::zero();
  double temp_delta_ = 0.0;  ///< kelvin above ambient
  double temp_integral_ = 0.0;  ///< integral of temp_delta_ over time
  std::vector<PowerSegment> segments_;
};

}  // namespace ewc::gpusim
