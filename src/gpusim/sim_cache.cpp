#include "gpusim/sim_cache.hpp"

#include <bit>

namespace ewc::gpusim {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

/// Exact, locale-independent encoding of a double: the raw IEEE-754 bit
/// pattern in hex. Distinguishes every value (negative zero, subnormals,
/// NaN payloads) and is an order of magnitude faster than snprintf hexfloat,
/// which matters because signatures are rebuilt on every lookup.
void put(std::string& key, double v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  char buf[17];
  for (int i = 15; i >= 0; --i) {
    buf[i] = kHex[bits & 0xF];
    bits >>= 4;
  }
  buf[16] = ',';
  key.append(buf, sizeof buf);
}

void put(std::string& key, std::int64_t v) {
  key += std::to_string(v);
  key += ',';
}

void append_device_config(std::string& key, const DeviceConfig& dev) {
  put(key, static_cast<std::int64_t>(dev.num_sms));
  put(key, static_cast<std::int64_t>(dev.sps_per_sm));
  put(key, static_cast<std::int64_t>(dev.warp_size));
  put(key, dev.shader_clock.hertz());
  put(key, static_cast<std::int64_t>(dev.max_blocks_per_sm));
  put(key, static_cast<std::int64_t>(dev.max_threads_per_sm));
  put(key, static_cast<std::int64_t>(dev.max_warps_per_sm));
  put(key, dev.registers_per_sm);
  put(key, dev.shared_mem_per_sm);
  put(key, dev.dram_bandwidth.bytes_per_second());
  put(key, dev.dram_latency_cycles);
  put(key, dev.coalesced_departure_cycles);
  put(key, dev.uncoalesced_departure_cycles);
  put(key, dev.coalesced_tx_bytes);
  put(key, dev.uncoalesced_tx_bytes);
  put(key, dev.memory_level_parallelism);
  put(key, dev.uncoalesced_dram_efficiency);
  put(key, dev.mixing_penalty_per_kernel);
  put(key, dev.min_mixing_efficiency);
  put(key, dev.pcie_h2d.bytes_per_second());
  put(key, dev.pcie_d2h.bytes_per_second());
  put(key, dev.transfer_latency.seconds());
  put(key, dev.cycles_per_alu_warp_inst);
  put(key, dev.cycles_per_sfu_warp_inst);
  put(key, dev.barrier_cost_cycles);
  put(key, static_cast<std::int64_t>(dev.dispatch_policy));
  put(key, static_cast<std::int64_t>(dev.dispatch_seed));
}

void append_energy_config(std::string& key, const EnergyConfig& energy) {
  put(key, energy.system_idle_with_gpu.watts());
  put(key, energy.host_only_idle.watts());
  put(key, energy.transfer_active_power.watts());
  put(key, energy.fp_energy);
  put(key, energy.int_energy);
  put(key, energy.sfu_energy);
  put(key, energy.coalesced_tx_energy);
  put(key, energy.uncoalesced_tx_energy);
  put(key, energy.shared_access_energy);
  put(key, energy.const_access_energy);
  put(key, energy.register_access_energy);
  put(key, energy.thermal_tau_seconds);
  put(key, energy.thermal_k_ss);
  put(key, energy.leakage_w_per_kelvin);
}

void append_kernel(std::string& key, const KernelDesc& k) {
  key += k.name;
  key += ';';
  put(key, static_cast<std::int64_t>(k.num_blocks));
  put(key, static_cast<std::int64_t>(k.threads_per_block));
  put(key, k.mix.fp_insts);
  put(key, k.mix.int_insts);
  put(key, k.mix.sfu_insts);
  put(key, k.mix.sync_insts);
  put(key, k.mix.coalesced_mem_insts);
  put(key, k.mix.uncoalesced_mem_insts);
  put(key, k.mix.shared_accesses);
  put(key, k.mix.const_accesses);
  put(key, static_cast<std::int64_t>(k.resources.registers_per_thread));
  put(key, k.resources.shared_mem_per_block);
  put(key, k.resources.constant_data.bytes());
  put(key, k.mlp);
  put(key, k.h2d_bytes.bytes());
  put(key, k.d2h_bytes.bytes());
}

}  // namespace

std::uint64_t device_config_hash(const DeviceConfig& dev) {
  std::string key;
  key.reserve(512);
  append_device_config(key, dev);
  return fnv1a(key);
}

std::uint64_t energy_config_hash(const EnergyConfig& energy) {
  std::string key;
  key.reserve(256);
  append_energy_config(key, energy);
  return fnv1a(key);
}

std::string config_key_prefix(const DeviceConfig& dev,
                              const EnergyConfig* energy) {
  std::string prefix;
  prefix.reserve(768);
  append_device_config(prefix, dev);
  prefix += '|';
  if (energy != nullptr) append_energy_config(prefix, *energy);
  return prefix;
}

PlanSignature plan_signature_with_prefix(const LaunchPlan& plan,
                                         std::string_view config_prefix,
                                         std::string_view tag,
                                         bool include_instance_ids) {
  PlanSignature sig;
  sig.key.reserve(64 + config_prefix.size() + 320 * plan.instances.size());
  sig.key += tag;
  sig.key += '|';
  sig.key += config_prefix;
  sig.key += '|';
  put(sig.key, static_cast<std::int64_t>(plan.reuse_constant_data ? 1 : 0));
  for (const auto& inst : plan.instances) {
    sig.key += '|';
    if (include_instance_ids) {
      put(sig.key, static_cast<std::int64_t>(inst.instance_id));
    }
    append_kernel(sig.key, inst.desc);
  }
  sig.hash = fnv1a(sig.key);
  return sig;
}

PlanSignature plan_signature(const LaunchPlan& plan, const DeviceConfig& dev,
                             const EnergyConfig* energy, std::string_view tag,
                             bool include_instance_ids) {
  return plan_signature_with_prefix(plan, config_key_prefix(dev, energy), tag,
                                    include_instance_ids);
}

}  // namespace ewc::gpusim
