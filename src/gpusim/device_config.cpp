#include "gpusim/device_config.hpp"

namespace ewc::gpusim {

DeviceConfig tesla_c1060() { return DeviceConfig{}; }

EnergyConfig c1060_energy() { return EnergyConfig{}; }

DeviceConfig fermi_c2050() {
  DeviceConfig d;
  d.num_sms = 14;
  d.sps_per_sm = 32;
  d.shader_clock = Frequency::from_ghz(1.15);
  d.max_blocks_per_sm = 8;
  d.max_threads_per_sm = 1536;
  d.max_warps_per_sm = 48;
  d.registers_per_sm = 32768;
  d.shared_mem_per_sm = 48 * 1024;
  d.dram_bandwidth = Bandwidth::from_gb_per_second(144.0);
  d.dram_latency_cycles = 400.0;
  d.uncoalesced_departure_cycles = 12.0;  // L1 absorbs most divergence
  d.uncoalesced_dram_efficiency = 0.80;
  d.memory_level_parallelism = 10.0;      // more MSHRs per SM
  d.pcie_h2d = Bandwidth::from_gb_per_second(5.2);  // PCIe 2.0 x16
  d.pcie_d2h = Bandwidth::from_gb_per_second(5.0);
  d.cycles_per_alu_warp_inst = 1.0;  // 32 SPs retire one warp per cycle
  d.cycles_per_sfu_warp_inst = 8.0;
  d.barrier_cost_cycles = 25.0;
  return d;
}

EnergyConfig c2050_energy() {
  EnergyConfig e;
  e.system_idle_with_gpu = Power::from_watts(215.0);  // C2050 idles hotter
  e.fp_energy = 5.0e-9;  // 40 nm process: cheaper events, more of them
  e.int_energy = 3.8e-9;
  e.sfu_energy = 14.0e-9;
  e.coalesced_tx_energy = 30.0e-9;
  e.uncoalesced_tx_energy = 9.0e-9;
  return e;
}

}  // namespace ewc::gpusim
