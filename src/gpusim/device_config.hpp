// GT200-class device description (NVIDIA Tesla C1060 defaults).
//
// Two groups of parameters live here:
//  * architectural parameters the *analytic models* are allowed to know
//    (paper Section VII lists them: DRAM latency, departure delays, SM clock,
//    DRAM bandwidth, SM counts and residency limits);
//  * ground-truth energy parameters only the *simulator* knows (per-event
//    energies, thermal constants). The power model must recover its
//    coefficients by regression against simulated measurements, exactly as
//    the paper fits its model against a wall-power meter.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace ewc::gpusim {

using common::Bandwidth;
using common::Duration;
using common::Frequency;
using common::Power;

/// How the GigaThread engine picks an SM for the next block. The paper
/// observes round-robin on GT200; the alternatives quantify how sensitive
/// consolidation results are to that assumption (scheduler ablation).
enum class DispatchPolicy {
  kRoundRobin,        ///< GT200 behaviour (default; what Section V models)
  kLeastLoadedWarps,  ///< pick the fitting SM with the fewest resident warps
  kRandom,            ///< uniform over fitting SMs (seeded, deterministic)
};

/// Architectural parameters (visible to the prediction models).
struct DeviceConfig {
  int num_sms = 30;                    ///< C1060: 30 SMs
  int sps_per_sm = 8;                  ///< scalar processors per SM
  int warp_size = 32;
  Frequency shader_clock = Frequency::from_ghz(1.296);

  // Per-SM residency limits (GT200).
  int max_blocks_per_sm = 8;
  int max_threads_per_sm = 1024;
  int max_warps_per_sm = 32;
  std::int64_t registers_per_sm = 16384;
  std::int64_t shared_mem_per_sm = 16 * 1024;  ///< bytes

  // Memory system.
  Bandwidth dram_bandwidth = Bandwidth::from_gb_per_second(102.0);
  double dram_latency_cycles = 450.0;       ///< load-to-use, shader cycles
  double coalesced_departure_cycles = 4.0;  ///< between coalesced transactions
  double uncoalesced_departure_cycles = 40.0;
  double coalesced_tx_bytes = 128.0;  ///< one transaction per warp
  double uncoalesced_tx_bytes = 32.0;  ///< per-thread transaction
  double memory_level_parallelism = 6.0;  ///< outstanding requests per warp

  /// DRAM row-locality efficiency for a fully-coalesced stream (1.0) down to
  /// a fully-uncoalesced stream.
  double uncoalesced_dram_efficiency = 0.55;
  /// Multiplicative efficiency loss per *additional* distinct kernel whose
  /// memory streams interleave in DRAM (row-buffer locality loss). This is
  /// the mechanism behind the paper's Scenario 1 (Table 2), where
  /// consolidating two memory-bound kernels costs more than serial execution.
  double mixing_penalty_per_kernel = 0.06;
  double min_mixing_efficiency = 0.78;

  // Host link (pageable transfers through the C1060's PCIe 1.1 x16).
  Bandwidth pcie_h2d = Bandwidth::from_gb_per_second(2.8);
  Bandwidth pcie_d2h = Bandwidth::from_gb_per_second(2.5);
  Duration transfer_latency = Duration::from_micros(15.0);

  // Instruction timing (shader cycles per warp-instruction).
  double cycles_per_alu_warp_inst = 4.0;   ///< FP32 / INT on the 8 SPs
  double cycles_per_sfu_warp_inst = 16.0;  ///< transcendental on the 2 SFUs
  double barrier_cost_cycles = 40.0;       ///< __syncthreads drain cost

  // Block dispatch (scheduler-ablation knobs; models assume round-robin).
  DispatchPolicy dispatch_policy = DispatchPolicy::kRoundRobin;
  std::uint64_t dispatch_seed = 0x5EEDull;  ///< for kRandom

  /// Issue cycles one warp needs per *thread-level* instruction mix.
  /// Barriers are NOT issue work: they stall the warp without consuming SM
  /// issue slots, so they are modelled as a separate latency demand
  /// (warp_stall_cycles) that other blocks' warps can hide under.
  double warp_compute_cycles(double fp, double intg, double sfu) const {
    return (fp + intg) * cycles_per_alu_warp_inst +
           sfu * cycles_per_sfu_warp_inst;
  }

  /// Stall cycles one warp spends waiting (barrier drain/rendezvous).
  double warp_stall_cycles(double sync) const {
    return sync * barrier_cost_cycles;
  }
};

/// Ground-truth energy/thermal parameters (simulator-only; the fitted power
/// model never reads these).
struct EnergyConfig {
  // System-level baselines (whole-node wall power, as the paper measures).
  Power system_idle_with_gpu = Power::from_watts(205.0);  ///< host + idle GPU
  Power host_only_idle = Power::from_watts(133.0);  ///< GPU power-disconnected
  Power transfer_active_power = Power::from_watts(18.0);  ///< PCIe + MC activity

  // Per-event energies, joules/event. "Events" are warp-instructions for the
  // compute classes and DRAM transactions for the memory classes.
  double fp_energy = 7.5e-9;
  double int_energy = 5.5e-9;
  double sfu_energy = 21.0e-9;
  double coalesced_tx_energy = 36.0e-9;
  double uncoalesced_tx_energy = 13.0e-9;  ///< per 32 B transaction
  double shared_access_energy = 2.1e-9;
  double const_access_energy = 1.6e-9;
  double register_access_energy = 0.9e-9;

  // Thermal model: dT/dt = (delta_ss - dT) / tau, delta_ss = k_ss * P_dyn,
  // and the leakage response P_T = k_leak * dT (paper Eq. 10's P_T term).
  double thermal_tau_seconds = 30.0;
  double thermal_k_ss = 0.22;    ///< steady-state kelvin per dynamic watt
  double leakage_w_per_kelvin = 0.32;
};

/// The Tesla C1060 + dual Xeon E5520 node used throughout the paper.
DeviceConfig tesla_c1060();
EnergyConfig c1060_energy();

/// A Fermi-generation part (Tesla C2050): more SMs-worth of throughput per
/// SM, cached uncoalesced accesses, deeper memory-level parallelism. The
/// paper's Section I/IX discussion — Fermi runs concurrent kernels *from one
/// process*, while this framework consolidates across processes — is
/// quantified by bench_fermi using this config.
DeviceConfig fermi_c2050();
EnergyConfig c2050_energy();

}  // namespace ewc::gpusim
