#include "gpusim/kernel_desc.hpp"

#include <algorithm>

namespace ewc::gpusim {

InstructionMix InstructionMix::scaled(double factor) const {
  InstructionMix m = *this;
  m.fp_insts *= factor;
  m.int_insts *= factor;
  m.sfu_insts *= factor;
  m.sync_insts *= factor;
  m.coalesced_mem_insts *= factor;
  m.uncoalesced_mem_insts *= factor;
  m.shared_accesses *= factor;
  m.const_accesses *= factor;
  return m;
}

double KernelDesc::avg_tx_bytes(const DeviceConfig& dev) const {
  double txs = warp_mem_transactions(dev);
  if (txs <= 0.0) return dev.coalesced_tx_bytes;
  return warp_mem_bytes(dev) / txs;
}

double KernelDesc::coalesced_fraction() const {
  double total = mix.mem_insts();
  if (total <= 0.0) return 1.0;
  return mix.coalesced_mem_insts / total;
}

double KernelDesc::dram_efficiency(const DeviceConfig& dev) const {
  double f = coalesced_fraction();
  return dev.uncoalesced_dram_efficiency +
         f * (1.0 - dev.uncoalesced_dram_efficiency);
}

double KernelDesc::effective_mem_latency_cycles(const DeviceConfig& dev) const {
  double f = coalesced_fraction();
  double departure = f * dev.coalesced_departure_cycles +
                     (1.0 - f) * dev.uncoalesced_departure_cycles *
                         static_cast<double>(dev.warp_size) /
                         4.0;  // diverging warp issues warp_size/4 groups
  return dev.dram_latency_cycles + departure;
}

bool KernelDesc::block_fits_empty_sm(const DeviceConfig& dev) const {
  if (threads_per_block > dev.max_threads_per_sm) return false;
  if (warps_per_block(dev) > dev.max_warps_per_sm) return false;
  std::int64_t regs = static_cast<std::int64_t>(resources.registers_per_thread) *
                      threads_per_block;
  if (regs > dev.registers_per_sm) return false;
  if (resources.shared_mem_per_block > dev.shared_mem_per_sm) return false;
  return true;
}

KernelDesc KernelDesc::with_work_scale(double factor) const {
  KernelDesc k = *this;
  k.mix = mix.scaled(factor);
  return k;
}

int LaunchPlan::total_blocks() const {
  int n = 0;
  for (const auto& inst : instances) n += inst.desc.num_blocks;
  return n;
}

}  // namespace ewc::gpusim
