// FluidEngine: a fluid discrete-event simulator of a GT200-class GPU.
//
// Thread blocks are fluid tasks with two coupled demands — compute cycles and
// DRAM bytes — drained concurrently (latency hiding) at rates recomputed at
// every scheduling event:
//   * an SM's issue bandwidth (shader clock) is shared fairly among the warps
//     of its resident blocks that still have compute work;
//   * device DRAM bandwidth is shared among all memory-active warps, each
//     additionally capped by its memory-level parallelism; effective
//     bandwidth degrades with the stream's coalescing quality and with the
//     number of distinct kernels mixing in DRAM (row-locality loss);
//   * blocks are dispatched to SMs in grid order, round-robin, subject to
//     register / shared-memory / thread / block residency limits, and
//     re-dispatched to whichever SM frees first (the paper's observed
//     "redistribution of untouched blocks").
//
// Events are block dispatches and per-demand completions, so a run costs
// O(#blocks * resident-per-SM) — fast enough for the thousands of runs the
// benches perform. Energy is integrated by EnergyIntegrator over the same
// fluid intervals, which is what the simulated power meter later samples.
#pragma once

#include <vector>

#include "gpusim/device_config.hpp"
#include "gpusim/energy_integrator.hpp"
#include "gpusim/kernel_desc.hpp"
#include "gpusim/metrics.hpp"

namespace ewc::gpusim {

class FluidEngine {
 public:
  explicit FluidEngine(DeviceConfig dev = tesla_c1060(),
                       EnergyConfig energy = c1060_energy());

  /// Execute one launch plan (a single kernel or a consolidated template).
  /// Instance completion times are relative to the start of the run.
  /// @throws std::invalid_argument for plans with non-runnable blocks.
  RunResult run(const LaunchPlan& plan) const;

  /// Execute instances back-to-back (the paper's "serial" GPU baseline).
  RunResult run_serial(const std::vector<KernelInstance>& instances) const;

  /// Upper bound on fluid events a run over `total_blocks` blocks may need
  /// (the runaway-loop guard). Derived, not heuristic — see the definition
  /// for the event accounting.
  static std::size_t event_budget(std::size_t total_blocks);

  const DeviceConfig& device() const { return dev_; }
  const EnergyConfig& energy_config() const { return energy_; }

 private:
  DeviceConfig dev_;
  EnergyConfig energy_;
};

}  // namespace ewc::gpusim
