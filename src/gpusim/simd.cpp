#include "gpusim/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace ewc::gpusim {

namespace {

// -1 = not yet resolved from the environment; 0/1 = forced.
std::atomic<int> g_simd_state{-1};

bool env_simd_enabled() {
  const char* v = std::getenv("EWC_SIMD");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "OFF") == 0 ||
           std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0 ||
           std::strcmp(v, "no") == 0);
}

}  // namespace

bool simd_enabled() {
  if (!simd_compiled_in()) return false;
  int s = g_simd_state.load(std::memory_order_relaxed);
  if (s < 0) {
    s = env_simd_enabled() ? 1 : 0;
    g_simd_state.store(s, std::memory_order_relaxed);
  }
  return s != 0;
}

void set_simd_enabled(bool on) {
  g_simd_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace ewc::gpusim
