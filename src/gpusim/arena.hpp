// Per-run bump arena for the fluid simulator's SoA state.
//
// FluidEngine::run used to allocate dozens of small vectors/sets per run and
// a std::set<std::string> *per fluid event*; at fleet scale those allocations
// dominated the advance loop. The arena replaces all of them with ONE
// allocation per run, carved into typed arrays. Lifetime rules
// (docs/SIMULATOR.md): the arena lives exactly as long as one run() call, is
// never resized after carving (pointers into it stay stable through the
// event loop), and is not shared across threads — each concurrent run owns
// its own arena.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace ewc::gpusim {

class Arena {
 public:
  explicit Arena(std::size_t bytes)
      : buf_(new unsigned char[bytes]), cap_(bytes) {}

  /// Carve a zero-initialized array of `n` Ts (T must be trivially
  /// copyable: the arena never runs destructors).
  /// @throws std::logic_error if the run's size estimate was wrong — carving
  ///         is sized exactly up front, so overflow is a bug, not a
  ///         condition to handle.
  template <typename T>
  T* alloc(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t align = alignof(T) > kMinAlign ? alignof(T) : kMinAlign;
    std::size_t at = (used_ + align - 1) & ~(align - 1);
    const std::size_t bytes = n * sizeof(T);
    if (at + bytes > cap_) {
      throw std::logic_error("Arena: carve overflow (sizing bug)");
    }
    used_ = at + bytes;
    T* p = reinterpret_cast<T*>(buf_.get() + at);
    std::memset(static_cast<void*>(p), 0, bytes);
    return p;
  }

  /// Worst-case bytes `alloc<T>(n)` may consume (payload + alignment slack);
  /// run() sums these to size the arena exactly.
  template <typename T>
  static constexpr std::size_t need(std::size_t n) {
    const std::size_t align = alignof(T) > kMinAlign ? alignof(T) : kMinAlign;
    return n * sizeof(T) + align;
  }

  std::size_t used() const { return used_; }

 private:
  // Every array is at least cache-line aligned so the SIMD loops never
  // straddle an unaligned head element.
  static constexpr std::size_t kMinAlign = 64;

  std::unique_ptr<unsigned char[]> buf_;
  std::size_t used_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace ewc::gpusim
