// Kernel descriptors: the contract between workloads and the simulator.
//
// A KernelDesc characterizes one GPU kernel the way the paper's models do
// (Section VII): grid/block shape, per-thread instruction mix (computation
// instructions, coalesced/uncoalesced memory instructions, synchronization
// instructions), per-block resource footprint, and host<->device transfer
// sizes. Workload modules derive these counts from their actual algorithms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "gpusim/device_config.hpp"

namespace ewc::gpusim {

using common::Bytes;

/// Per-thread dynamic instruction mix for one kernel.
struct InstructionMix {
  double fp_insts = 0.0;           ///< FP32 arithmetic
  double int_insts = 0.0;          ///< integer / address arithmetic
  double sfu_insts = 0.0;          ///< transcendental (sin, exp, log, ...)
  double sync_insts = 0.0;         ///< __syncthreads()
  double coalesced_mem_insts = 0.0;    ///< warp-coalesced global accesses
  double uncoalesced_mem_insts = 0.0;  ///< fully-diverging global accesses
  double shared_accesses = 0.0;    ///< shared-memory accesses
  double const_accesses = 0.0;     ///< constant-cache accesses

  double compute_insts() const { return fp_insts + int_insts + sfu_insts; }
  double mem_insts() const { return coalesced_mem_insts + uncoalesced_mem_insts; }

  InstructionMix scaled(double factor) const;
};

/// Per-block resource footprint (drives SM residency).
struct ResourceUsage {
  int registers_per_thread = 16;
  std::int64_t shared_mem_per_block = 0;  ///< bytes
  Bytes constant_data = Bytes::zero();    ///< uploaded once per kernel
};

/// Complete description of one kernel launch.
struct KernelDesc {
  std::string name;
  int num_blocks = 1;
  int threads_per_block = 256;
  InstructionMix mix;       ///< per-thread counts for the whole kernel run
  ResourceUsage resources;
  /// Per-kernel memory-level parallelism override (outstanding requests per
  /// warp); 0 uses the device default. Low values model dependent-access
  /// chains (table lookups, pointer chasing) that cannot pipeline and leave
  /// the kernel latency-bound far below DRAM bandwidth.
  double mlp = 0.0;
  Bytes h2d_bytes = Bytes::zero();  ///< input transfer per instance
  Bytes d2h_bytes = Bytes::zero();  ///< output transfer per instance

  int warps_per_block(const DeviceConfig& dev) const {
    return (threads_per_block + dev.warp_size - 1) / dev.warp_size;
  }

  /// Issue-cycle demand of one warp (paper: computation instructions).
  double warp_compute_cycles(const DeviceConfig& dev) const {
    return dev.warp_compute_cycles(mix.fp_insts, mix.int_insts, mix.sfu_insts);
  }

  /// Barrier-stall demand of one warp: latency that elapses without
  /// consuming issue slots or DRAM bandwidth (synchronization instructions).
  double warp_stall_cycles(const DeviceConfig& dev) const {
    return dev.warp_stall_cycles(mix.sync_insts);
  }

  /// DRAM bytes one warp moves over the kernel's lifetime.
  double warp_mem_bytes(const DeviceConfig& dev) const {
    return mix.coalesced_mem_insts * dev.coalesced_tx_bytes +
           mix.uncoalesced_mem_insts * static_cast<double>(dev.warp_size) *
               dev.uncoalesced_tx_bytes;
  }

  /// DRAM transactions one warp issues.
  double warp_mem_transactions(const DeviceConfig& dev) const {
    return mix.coalesced_mem_insts +
           mix.uncoalesced_mem_insts * static_cast<double>(dev.warp_size);
  }

  /// Mean bytes per DRAM transaction (128 for coalesced, 32 for diverging).
  double avg_tx_bytes(const DeviceConfig& dev) const;

  /// Effective memory-level parallelism (override or device default).
  double effective_mlp(const DeviceConfig& dev) const {
    return mlp > 0.0 ? mlp : dev.memory_level_parallelism;
  }

  /// Fraction of memory instructions that coalesce (1.0 = fully coalesced).
  double coalesced_fraction() const;

  /// DRAM row-locality efficiency of this kernel's stream in isolation.
  double dram_efficiency(const DeviceConfig& dev) const;

  /// Effective memory latency including the departure-delay penalty for
  /// uncoalesced transactions (paper Section VII's architecture parameters).
  double effective_mem_latency_cycles(const DeviceConfig& dev) const;

  /// True if a single block of this kernel fits an empty SM.
  bool block_fits_empty_sm(const DeviceConfig& dev) const;

  /// Whether the kernel does any global-memory work at all.
  bool has_mem_work() const { return mix.mem_insts() > 0.0; }
  bool has_compute_work() const { return mix.compute_insts() > 0.0; }

  /// Uniformly scale the per-thread work (used by workload generators to
  /// express "iterations").
  KernelDesc with_work_scale(double factor) const;
};

/// One runnable instance of a kernel (a user request in the ready state).
struct KernelInstance {
  KernelDesc desc;
  int instance_id = 0;  ///< unique within a launch plan
  std::string owner;    ///< originating frontend/user, for reporting
};

/// A launch plan: the unit the engine executes. For a consolidated launch
/// the plan holds several instances whose blocks form one combined grid, in
/// plan order (this mirrors the paper's precompiled templates, which
/// concatenate each instance's blocks and dispatch them round-robin).
struct LaunchPlan {
  std::vector<KernelInstance> instances;
  /// If true, instance transfers that carry identical constant data are
  /// uploaded only once (the framework's data-reuse optimization).
  bool reuse_constant_data = false;

  int total_blocks() const;
};

}  // namespace ewc::gpusim
