// Runtime + compile-time switch between the FluidEngine advance paths.
//
// Two implementations of the inner advance kernels are always part of the
// source: the scalar reference (the ground truth the golden digests pin) and
// a vectorized path (branchless loops under `#pragma omp simd`). Which one
// runs is decided at runtime:
//   * EWC_SIMD=off|0|false|no in the environment forces the scalar path;
//   * set_simd_enabled() overrides the environment (tests flip it to prove
//     both paths bit-identical in one process);
//   * a -DEWC_SIMD=OFF build compiles with EWC_SIMD_DISABLED, which pins the
//     scalar path regardless of the environment (the CI golden job builds
//     both flavours and diffs their digest output).
//
// The two paths are bit-identical BY CONSTRUCTION, not by tolerance: only
// elementwise arithmetic and min-reductions (exact under reordering) are
// vectorized, while every ordered floating-point sum goes through shared
// scalar helpers. See docs/SIMULATOR.md for the full policy.
#pragma once

namespace ewc::gpusim {

/// True when the vectorized advance path is active for new runs.
bool simd_enabled();

/// Test/tooling override. No-op (always scalar) in EWC_SIMD_DISABLED builds.
void set_simd_enabled(bool on);

/// True when the vectorized path exists in this binary at all.
constexpr bool simd_compiled_in() {
#ifdef EWC_SIMD_DISABLED
  return false;
#else
  return true;
#endif
}

}  // namespace ewc::gpusim
