// Memoization layer for simulation and prediction results.
//
// The decision stack evaluates the same workload shapes millions of times in
// a datacenter replay: the cache maps a *canonical launch-plan signature* —
// kernel names, grid/block dims, resource usage, instruction mix, work
// scale, device-config hash, energy-config hash and optimization flags — to
// previously computed results. The signature's `key` is an exact textual
// encoding (every double as its raw IEEE-754 bit pattern in hex), so two
// requests share an entry only if the simulator would be handed bit-identical
// inputs; a hit is therefore bit-identical to a fresh run. Entries are LRU-bounded and the cache keeps
// hit / miss / eviction counters for `ewcsim cache-stats` reporting.
//
// Invalidation is by construction: the device config and energy config are
// part of the key, so changing either simply stops matching old entries
// (callers that swap configs should also clear() to release dead entries).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "gpusim/device_config.hpp"
#include "gpusim/kernel_desc.hpp"
#include "gpusim/metrics.hpp"

namespace ewc::gpusim {

/// Monotone counters describing a cache's lifetime behaviour.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;  ///< current resident entries

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    entries += o.entries;
    return *this;
  }
};

/// Canonical identity of one simulation/prediction request.
struct PlanSignature {
  std::uint64_t hash = 0;  ///< FNV-1a over `key`
  std::string key;         ///< exact encoding; equality is collision-free
};

/// FNV-1a, the hash the signature uses (exposed for tests).
std::uint64_t fnv1a(std::string_view s);

/// Hash of every architectural field of a device config (the "device-config
/// hash" part of the cache key).
std::uint64_t device_config_hash(const DeviceConfig& dev);

/// Hash of every ground-truth energy/thermal parameter.
std::uint64_t energy_config_hash(const EnergyConfig& energy);

/// Build the canonical signature of `plan` on `dev` (+`energy` when the
/// cached value depends on the energy model, i.e. for simulator results).
///
/// @param tag  namespaces otherwise-identical requests (e.g. "run" vs
///             "serial" vs "predict") so their entries never alias.
/// @param include_instance_ids  instance ids are part of RunResult
///             (completions), so simulator results must key on them; pure
///             per-kernel predictions that only depend on the descriptor
///             pass false to share entries across batch positions.
///             The `owner` string never affects results and is always
///             excluded.
PlanSignature plan_signature(const LaunchPlan& plan, const DeviceConfig& dev,
                             const EnergyConfig* energy = nullptr,
                             std::string_view tag = "run",
                             bool include_instance_ids = true);

/// The device(+energy) portion of the key, encoded once. Long-lived callers
/// (DecisionEngine, QueueSimulator) precompute this so per-lookup signature
/// building only encodes the plan itself.
std::string config_key_prefix(const DeviceConfig& dev,
                              const EnergyConfig* energy = nullptr);

/// plan_signature with the static portion already encoded; identical output
/// to plan_signature when `config_prefix` came from config_key_prefix with
/// the same configs.
PlanSignature plan_signature_with_prefix(const LaunchPlan& plan,
                                         std::string_view config_prefix,
                                         std::string_view tag,
                                         bool include_instance_ids);

/// Thread-safe LRU map from PlanSignature to an arbitrary result type.
template <typename Value>
class SimCache {
 public:
  explicit SimCache(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  /// Returns a copy of the cached value and refreshes its LRU position.
  std::optional<Value> get(const PlanSignature& sig) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(sig.key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return entries_.front().second;
  }

  /// Inserts (or refreshes) `value`, evicting the least-recently-used entry
  /// once past capacity.
  void put(const PlanSignature& sig, Value value) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(sig.key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.emplace_front(sig.key, std::move(value));
    index_.emplace(std::string_view(entries_.front().first),
                   entries_.begin());
    if (entries_.size() > capacity_) {
      index_.erase(std::string_view(entries_.back().first));
      entries_.pop_back();
      ++evictions_;
    }
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    index_.clear();
    entries_.clear();
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    CacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.entries = entries_.size();
    return s;
  }

 private:
  using Entry = std::pair<std::string, Value>;

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> entries_;  ///< front = most recently used
  // Views point at the list entries' keys; list nodes never relocate.
  std::unordered_map<std::string_view, typename std::list<Entry>::iterator>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// The simulator-result cache type QueueSimulator uses.
using RunResultCache = SimCache<RunResult>;

}  // namespace ewc::gpusim
