#include "gpusim/metrics.hpp"

#include <algorithm>

namespace ewc::gpusim {

void RunResult::append(const RunResult& next) {
  Duration offset = total_time;

  // Weighted means before durations change.
  double tt = total_time.seconds() + next.total_time.seconds();
  if (tt > 0.0) {
    avg_temp_delta_kelvin =
        (avg_temp_delta_kelvin * total_time.seconds() +
         next.avg_temp_delta_kelvin * next.total_time.seconds()) /
        tt;
  }
  double kt = kernel_time.seconds() + next.kernel_time.seconds();
  if (kt > 0.0) {
    avg_dram_utilization = (avg_dram_utilization * kernel_time.seconds() +
                            next.avg_dram_utilization * next.kernel_time.seconds()) /
                           kt;
    avg_sm_utilization = (avg_sm_utilization * kernel_time.seconds() +
                          next.avg_sm_utilization * next.kernel_time.seconds()) /
                         kt;
  }

  total_time += next.total_time;
  kernel_time += next.kernel_time;
  h2d_time += next.h2d_time;
  d2h_time += next.d2h_time;
  system_energy += next.system_energy;
  avg_system_power = total_time.seconds() > 0.0
                         ? system_energy / total_time
                         : Power::zero();

  if (sm_stats.size() < next.sm_stats.size()) {
    sm_stats.resize(next.sm_stats.size());
  }
  for (std::size_t i = 0; i < next.sm_stats.size(); ++i) {
    sm_stats[i].busy += next.sm_stats[i].busy;
    sm_stats[i].blocks_executed += next.sm_stats[i].blocks_executed;
    sm_stats[i].counts += next.sm_stats[i].counts;
  }
  device_counts += next.device_counts;
  fluid_events += next.fluid_events;
  wall_advance_seconds += next.wall_advance_seconds;
  wall_total_seconds += next.wall_total_seconds;

  for (PowerSegment seg : next.power_segments) {
    seg.start += offset;
    power_segments.push_back(seg);
  }
  for (InstanceCompletion c : next.completions) {
    c.finish_time += offset;
    completions.push_back(c);
  }
  // Occupancy samples are kernel-relative within one run; shift them by the
  // accumulated offset, the same convention completions use, so the combined
  // series reads as one timeline.
  for (OccupancySample s : next.occupancy) {
    s.time += offset;
    occupancy.push_back(s);
  }
}

}  // namespace ewc::gpusim
