#include "gpusim/energy_integrator.hpp"

#include <cmath>

namespace ewc::gpusim {

EnergyIntegrator::EnergyIntegrator(const EnergyConfig& cfg, Power system_idle)
    : cfg_(cfg), idle_(system_idle) {}

Power EnergyIntegrator::dynamic_power(const ComponentCounts& r) const {
  double watts = r.fp * cfg_.fp_energy + r.int_ops * cfg_.int_energy +
                 r.sfu * cfg_.sfu_energy +
                 r.coalesced_tx * cfg_.coalesced_tx_energy +
                 r.uncoalesced_tx * cfg_.uncoalesced_tx_energy +
                 r.shared * cfg_.shared_access_energy +
                 r.constant * cfg_.const_access_energy +
                 r.reg * cfg_.register_access_energy;
  return Power::from_watts(watts);
}

void EnergyIntegrator::advance(Duration dt, const ComponentCounts& events,
                               bool transfer_active) {
  if (dt.seconds() <= 0.0) return;
  const double secs = dt.seconds();

  // Event totals over the interval -> average rates -> dynamic power.
  ComponentCounts rates = events.scaled(1.0 / secs);
  const double p_dyn = dynamic_power(rates).watts();

  // First-order thermal response: dT relaxes toward k_ss * P_dyn with time
  // constant tau. Integrate the leakage term analytically over the interval.
  const double tau = cfg_.thermal_tau_seconds;
  const double target = cfg_.thermal_k_ss * p_dyn;
  const double decay = std::exp(-secs / tau);
  // Integral of dT over [0, secs]:
  const double dt_integral =
      target * secs + (temp_delta_ - target) * tau * (1.0 - decay);
  const double leak_energy = cfg_.leakage_w_per_kelvin * dt_integral;
  temp_integral_ += dt_integral;
  temp_delta_ = target + (temp_delta_ - target) * decay;

  double base = idle_.watts();
  if (transfer_active) base += cfg_.transfer_active_power.watts();

  const double avg_power = base + p_dyn + leak_energy / secs;
  energy_ += Energy::from_joules(avg_power * secs);
  segments_.push_back(
      PowerSegment{elapsed_, dt, Power::from_watts(avg_power)});
  elapsed_ += dt;
}

}  // namespace ewc::gpusim
