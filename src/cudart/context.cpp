#include "cudart/context.hpp"

namespace ewc::cudart {

Context::Context(std::string owner, std::size_t device_capacity_bytes)
    : owner_(std::move(owner)), capacity_(device_capacity_bytes) {}

Context::~Context() = default;

wcudaError Context::allocate(std::size_t bytes, void** out) {
  if (out == nullptr || bytes == 0) return wcudaError::kInvalidValue;
  if (used_ + bytes > capacity_) return wcudaError::kOutOfMemory;
  auto alloc = std::make_unique<Allocation>();
  alloc->data.resize(bytes);
  void* ptr = alloc->data.data();
  allocations_.emplace(ptr, std::move(alloc));
  used_ += bytes;
  *out = ptr;
  return wcudaError::kSuccess;
}

wcudaError Context::release(void* ptr) {
  auto it = allocations_.find(ptr);
  if (it == allocations_.end()) return wcudaError::kInvalidDevicePointer;
  used_ -= it->second->data.size();
  allocations_.erase(it);
  return wcudaError::kSuccess;
}

Allocation* Context::find(void* ptr) {
  auto it = allocations_.find(ptr);
  return it == allocations_.end() ? nullptr : it->second.get();
}

void Context::reset_launch_state() {
  config_ = LaunchConfig{};
  args_.clear();
}

std::size_t Context::take_h2d_since_launch() {
  std::size_t b = h2d_since_launch_;
  h2d_since_launch_ = 0;
  return b;
}

}  // namespace ewc::cudart
