// Interception hook: how the consolidation frontend captures API calls.
#pragma once

#include <cstddef>
#include <string>

#include "cudart/api.hpp"

namespace ewc::cudart {

/// Implemented by consolidate::Frontend. Each method corresponds to one of
/// the paper's intercepted CUDA entry points; returning kSuccess means the
/// interceptor handled the call and the runtime must not execute it directly.
class Interceptor {
 public:
  virtual ~Interceptor() = default;

  virtual wcudaError on_malloc(void** dev_ptr, std::size_t bytes) = 0;
  virtual wcudaError on_free(void* dev_ptr) = 0;
  virtual wcudaError on_memcpy(void* dst, const void* src, std::size_t bytes,
                               MemcpyKind kind) = 0;
  virtual wcudaError on_configure_call(Dim3 grid, Dim3 block,
                                       std::size_t shared_mem_bytes) = 0;
  virtual wcudaError on_setup_argument(const void* arg, std::size_t size,
                                       std::size_t offset) = 0;
  virtual wcudaError on_launch(const std::string& kernel_name) = 0;
};

}  // namespace ewc::cudart
