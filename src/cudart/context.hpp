// Per-process device context.
//
// Each simulated user process owns one Context: its device allocations, the
// pending launch configuration, and the marshalled kernel arguments. The
// paper's central constraint — a process cannot touch another process's GPU
// context, which is why the backend must stage copies through its own
// buffer — is enforced here by giving every Context a private allocation map.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cudart/api.hpp"

namespace ewc::cudart {

class Interceptor;

/// A device allocation with a real backing store, so workloads can round-trip
/// data and verify functional correctness.
struct Allocation {
  std::vector<std::byte> data;
};

class Context {
 public:
  explicit Context(std::string owner, std::size_t device_capacity_bytes);
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  const std::string& owner() const { return owner_; }

  // ---- device memory ----
  wcudaError allocate(std::size_t bytes, void** out);
  wcudaError release(void* ptr);
  /// Look up the allocation containing `ptr` (must be its base today).
  Allocation* find(void* ptr);
  std::size_t bytes_in_use() const { return used_; }
  std::size_t allocation_count() const { return allocations_.size(); }

  // ---- launch state machine ----
  LaunchConfig& pending_config() { return config_; }
  std::vector<std::byte>& pending_args() { return args_; }
  void reset_launch_state();

  // ---- interception ----
  void set_interceptor(Interceptor* i) { interceptor_ = i; }
  Interceptor* interceptor() const { return interceptor_; }

  // ---- transfer accounting (feeds the engine's PCIe cost model) ----
  void note_h2d(std::size_t bytes) { h2d_since_launch_ += bytes; }
  void note_d2h(std::size_t bytes) { d2h_total_ += bytes; }
  std::size_t take_h2d_since_launch();
  std::size_t d2h_total() const { return d2h_total_; }

 private:
  std::string owner_;
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::map<void*, std::unique_ptr<Allocation>> allocations_;
  LaunchConfig config_;
  std::vector<std::byte> args_;
  Interceptor* interceptor_ = nullptr;
  std::size_t h2d_since_launch_ = 0;
  std::size_t d2h_total_ = 0;
};

}  // namespace ewc::cudart
