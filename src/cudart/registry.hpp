// Kernel registry: maps kernel names to descriptor factories.
//
// In real CUDA a launch resolves a device-code symbol; here it resolves a
// factory that turns (launch configuration, marshalled arguments) into the
// KernelDesc the simulator executes. Workload modules register their kernels
// at startup, exactly like fatbin registration.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "cudart/api.hpp"
#include "gpusim/kernel_desc.hpp"

namespace ewc::cudart {

/// Builds a simulator kernel descriptor from a launch request.
using KernelFactory = std::function<gpusim::KernelDesc(
    const LaunchConfig& config, std::span<const std::byte> args)>;

class KernelRegistry {
 public:
  /// Register `name`; overwrites any previous registration.
  void register_kernel(std::string name, KernelFactory factory);

  bool contains(const std::string& name) const;

  /// @throws std::out_of_range if the kernel is unknown.
  gpusim::KernelDesc instantiate(const std::string& name,
                                 const LaunchConfig& config,
                                 std::span<const std::byte> args) const;

  std::vector<std::string> names() const;

  /// Process-wide registry (what fatbin registration would populate).
  static KernelRegistry& global();

 private:
  std::map<std::string, KernelFactory> factories_;
};

}  // namespace ewc::cudart
