// The wcuda runtime: the API applications call.
//
// Mirrors the five CUDA runtime entry points the paper's frontend intercepts,
// plus wcudaFree. When a Context has an Interceptor attached (a consolidation
// frontend), every call is diverted to it before touching the device — this
// is the in-process equivalent of the paper's shared-library interposition.
// Without an interceptor, calls execute directly: memory ops hit the
// context's private device heap and launches run standalone on the simulator.
#pragma once

#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "cudart/api.hpp"
#include "cudart/context.hpp"
#include "cudart/interceptor.hpp"
#include "cudart/registry.hpp"
#include "gpusim/engine.hpp"

namespace ewc::cudart {

class Runtime {
 public:
  /// @param engine    device the direct (unintercepted) path executes on.
  /// @param registry  kernel-name resolution; defaults to the global one.
  explicit Runtime(const gpusim::FluidEngine& engine,
                   const KernelRegistry* registry = nullptr);

  // ---- the five intercepted entry points (+ free) ----
  wcudaError wcudaMalloc(Context& ctx, void** dev_ptr, std::size_t bytes);
  wcudaError wcudaFree(Context& ctx, void* dev_ptr);
  wcudaError wcudaMemcpy(Context& ctx, void* dst, const void* src,
                         std::size_t bytes, MemcpyKind kind);
  wcudaError wcudaConfigureCall(Context& ctx, Dim3 grid, Dim3 block,
                                std::size_t shared_mem_bytes);
  wcudaError wcudaSetupArgument(Context& ctx, const void* arg,
                                std::size_t size, std::size_t offset);
  wcudaError wcudaLaunch(Context& ctx, const std::string& kernel_name);

  /// Copy helper for the direct path (also used by the backend, whose staging
  /// buffer *is* in its own context).
  static wcudaError copy_into_allocation(Allocation& alloc, std::size_t offset,
                                         const void* src, std::size_t bytes);

  /// Total simulated GPU activity executed through the *direct* path.
  const gpusim::RunResult& direct_stats() const { return direct_stats_; }
  int direct_launches() const { return direct_launches_; }

  const gpusim::FluidEngine& engine() const { return engine_; }
  const KernelRegistry& registry() const { return *registry_; }

 private:
  const gpusim::FluidEngine& engine_;
  const KernelRegistry* registry_;
  gpusim::RunResult direct_stats_;
  int direct_launches_ = 0;
  int next_instance_id_ = 0;
  std::mutex mu_;
};

}  // namespace ewc::cudart
