#include "cudart/runtime.hpp"

#include <cstring>
#include <stdexcept>

namespace ewc::cudart {

const char* error_name(wcudaError e) {
  switch (e) {
    case wcudaError::kSuccess: return "wcudaSuccess";
    case wcudaError::kInvalidValue: return "wcudaErrorInvalidValue";
    case wcudaError::kOutOfMemory: return "wcudaErrorOutOfMemory";
    case wcudaError::kInvalidDevicePointer:
      return "wcudaErrorInvalidDevicePointer";
    case wcudaError::kInvalidConfiguration:
      return "wcudaErrorInvalidConfiguration";
    case wcudaError::kLaunchFailure: return "wcudaErrorLaunchFailure";
    case wcudaError::kUnknownKernel: return "wcudaErrorUnknownKernel";
  }
  return "wcudaErrorUnknown";
}

Runtime::Runtime(const gpusim::FluidEngine& engine,
                 const KernelRegistry* registry)
    : engine_(engine),
      registry_(registry ? registry : &KernelRegistry::global()) {
  direct_stats_.sm_stats.resize(
      static_cast<std::size_t>(engine_.device().num_sms));
}

wcudaError Runtime::wcudaMalloc(Context& ctx, void** dev_ptr,
                                std::size_t bytes) {
  if (auto* i = ctx.interceptor()) return i->on_malloc(dev_ptr, bytes);
  return ctx.allocate(bytes, dev_ptr);
}

wcudaError Runtime::wcudaFree(Context& ctx, void* dev_ptr) {
  if (auto* i = ctx.interceptor()) return i->on_free(dev_ptr);
  return ctx.release(dev_ptr);
}

wcudaError Runtime::copy_into_allocation(Allocation& alloc, std::size_t offset,
                                         const void* src, std::size_t bytes) {
  if (offset + bytes > alloc.data.size()) return wcudaError::kInvalidValue;
  std::memcpy(alloc.data.data() + offset, src, bytes);
  return wcudaError::kSuccess;
}

wcudaError Runtime::wcudaMemcpy(Context& ctx, void* dst, const void* src,
                                std::size_t bytes, MemcpyKind kind) {
  if (dst == nullptr || src == nullptr) return wcudaError::kInvalidValue;
  if (auto* i = ctx.interceptor()) return i->on_memcpy(dst, src, bytes, kind);

  switch (kind) {
    case MemcpyKind::kHostToDevice: {
      Allocation* alloc = ctx.find(dst);
      if (alloc == nullptr) return wcudaError::kInvalidDevicePointer;
      if (bytes > alloc->data.size()) return wcudaError::kInvalidValue;
      std::memcpy(alloc->data.data(), src, bytes);
      ctx.note_h2d(bytes);
      return wcudaError::kSuccess;
    }
    case MemcpyKind::kDeviceToHost: {
      Allocation* alloc = ctx.find(const_cast<void*>(src));
      if (alloc == nullptr) return wcudaError::kInvalidDevicePointer;
      if (bytes > alloc->data.size()) return wcudaError::kInvalidValue;
      std::memcpy(dst, alloc->data.data(), bytes);
      ctx.note_d2h(bytes);
      return wcudaError::kSuccess;
    }
    case MemcpyKind::kDeviceToDevice: {
      Allocation* d = ctx.find(dst);
      Allocation* s = ctx.find(const_cast<void*>(src));
      if (d == nullptr || s == nullptr) {
        return wcudaError::kInvalidDevicePointer;
      }
      if (bytes > d->data.size() || bytes > s->data.size()) {
        return wcudaError::kInvalidValue;
      }
      std::memcpy(d->data.data(), s->data.data(), bytes);
      return wcudaError::kSuccess;
    }
  }
  return wcudaError::kInvalidValue;
}

wcudaError Runtime::wcudaConfigureCall(Context& ctx, Dim3 grid, Dim3 block,
                                       std::size_t shared_mem_bytes) {
  if (grid.count() == 0 || block.count() == 0 || block.count() > 1024) {
    return wcudaError::kInvalidConfiguration;
  }
  if (auto* i = ctx.interceptor()) {
    return i->on_configure_call(grid, block, shared_mem_bytes);
  }
  ctx.pending_config() =
      LaunchConfig{grid, block, shared_mem_bytes, /*valid=*/true};
  ctx.pending_args().clear();
  return wcudaError::kSuccess;
}

wcudaError Runtime::wcudaSetupArgument(Context& ctx, const void* arg,
                                       std::size_t size, std::size_t offset) {
  if (arg == nullptr || size == 0) return wcudaError::kInvalidValue;
  if (auto* i = ctx.interceptor()) {
    return i->on_setup_argument(arg, size, offset);
  }
  if (!ctx.pending_config().valid) return wcudaError::kInvalidConfiguration;
  auto& args = ctx.pending_args();
  if (args.size() < offset + size) args.resize(offset + size);
  std::memcpy(args.data() + offset, arg, size);
  return wcudaError::kSuccess;
}

wcudaError Runtime::wcudaLaunch(Context& ctx, const std::string& kernel_name) {
  if (auto* i = ctx.interceptor()) return i->on_launch(kernel_name);
  if (!ctx.pending_config().valid) return wcudaError::kInvalidConfiguration;
  if (!registry_->contains(kernel_name)) return wcudaError::kUnknownKernel;

  gpusim::LaunchPlan plan;
  gpusim::KernelInstance inst;
  try {
    inst.desc = registry_->instantiate(kernel_name, ctx.pending_config(),
                                       ctx.pending_args());
  } catch (const std::exception&) {
    return wcudaError::kLaunchFailure;
  }
  // Transfers the app actually performed since the last launch dominate the
  // descriptor's static estimate when present.
  std::size_t copied = ctx.take_h2d_since_launch();
  if (copied > 0) {
    inst.desc.h2d_bytes = common::Bytes::from_bytes(static_cast<double>(copied));
  }
  inst.owner = ctx.owner();
  ctx.reset_launch_state();

  gpusim::RunResult run;
  {
    std::lock_guard lock(mu_);
    inst.instance_id = next_instance_id_++;
  }
  plan.instances.push_back(std::move(inst));
  try {
    run = engine_.run(plan);
  } catch (const std::exception&) {
    return wcudaError::kLaunchFailure;
  }
  {
    std::lock_guard lock(mu_);
    direct_stats_.append(run);
    direct_launches_ += 1;
  }
  return wcudaError::kSuccess;
}

}  // namespace ewc::cudart
