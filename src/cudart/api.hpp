// "wcuda": a CUDA-runtime-like API surface executing on the GPU simulator.
//
// The consolidation framework (paper Section IV) works by intercepting five
// CUDA runtime entry points from unmodified applications:
//   cudaMalloc, cudaMemcpy, cudaConfigureCall, cudaSetupArgument, cudaLaunch
// This header defines the equivalent vocabulary types for the simulated
// stack. Applications call ewc::cudart::Runtime; when a consolidation
// frontend is attached to their Context the calls are diverted to it,
// mirroring the paper's LD_PRELOAD-style shared-library interposition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ewc::cudart {

enum class wcudaError {
  kSuccess = 0,
  kInvalidValue,
  kOutOfMemory,
  kInvalidDevicePointer,
  kInvalidConfiguration,
  kLaunchFailure,
  kUnknownKernel,
};

const char* error_name(wcudaError e);

enum class MemcpyKind {
  kHostToDevice,
  kDeviceToHost,
  kDeviceToDevice,
};

struct Dim3 {
  unsigned x = 1;
  unsigned y = 1;
  unsigned z = 1;
  unsigned count() const { return x * y * z; }
};

/// Execution configuration captured by wcudaConfigureCall.
struct LaunchConfig {
  Dim3 grid;
  Dim3 block;
  std::size_t shared_mem_bytes = 0;
  bool valid = false;
};

}  // namespace ewc::cudart
