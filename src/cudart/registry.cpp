#include "cudart/registry.hpp"

#include <stdexcept>

namespace ewc::cudart {

void KernelRegistry::register_kernel(std::string name, KernelFactory factory) {
  factories_[std::move(name)] = std::move(factory);
}

bool KernelRegistry::contains(const std::string& name) const {
  return factories_.count(name) != 0;
}

gpusim::KernelDesc KernelRegistry::instantiate(
    const std::string& name, const LaunchConfig& config,
    std::span<const std::byte> args) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw std::out_of_range("KernelRegistry: unknown kernel '" + name + "'");
  }
  return it->second(config, args);
}

std::vector<std::string> KernelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;
}

KernelRegistry& KernelRegistry::global() {
  static KernelRegistry registry;
  return registry;
}

}  // namespace ewc::cudart
