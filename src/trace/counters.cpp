#include "trace/counters.hpp"

namespace ewc::trace {

Counters& Counters::instance() {
  // Leaked: published-to from arbitrary threads until process exit.
  static Counters* c = new Counters();
  return *c;
}

Counters::Handle Counters::handle(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(name);
  if (it == cells_.end()) {
    it = cells_
             .emplace(name, std::make_unique<std::atomic<double>>(0.0))
             .first;
  }
  return Handle(it->second.get());
}

double Counters::value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.find(name);
  return it == cells_.end()
             ? 0.0
             : it->second->load(std::memory_order_relaxed);
}

std::map<std::string, double> Counters::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, cell] : cells_) {
    out.emplace(name, cell->load(std::memory_order_relaxed));
  }
  return out;
}

void Counters::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, cell] : cells_) {
    cell->store(0.0, std::memory_order_relaxed);
  }
}

}  // namespace ewc::trace
