#include "trace/counters.hpp"

namespace ewc::trace {

Counters& Counters::instance() {
  // Leaked: published-to from arbitrary threads until process exit.
  static Counters* c = new Counters();
  return *c;
}

void Counters::set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  values_[name] = value;
}

void Counters::add(const std::string& name, double delta) {
  std::lock_guard<std::mutex> lock(mu_);
  values_[name] += delta;
}

double Counters::value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

std::map<std::string, double> Counters::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return values_;
}

void Counters::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  values_.clear();
}

}  // namespace ewc::trace
