// Process-wide named counters for runtime observability.
//
// The caching/parallel layer (SimCache, ThreadPool, QueueSimulator,
// DecisionEngine) publishes its statistics here under dotted names
// ("queue_sim.run_cache.hits", "decision.pool.executed", ...), and reporting
// surfaces — `ewcsim cache-stats`, the bench harnesses — read one coherent
// snapshot instead of threading stats structs through every layer. Counters
// are doubles: most are event counts, some are rates.
#pragma once

#include <map>
#include <mutex>
#include <string>

namespace ewc::trace {

class Counters {
 public:
  /// The process-wide registry.
  static Counters& instance();

  void set(const std::string& name, double value);
  void add(const std::string& name, double delta);
  /// add(name, 1.0) — the common event-count case (server accept/reject...).
  void inc(const std::string& name) { add(name, 1.0); }

  /// 0.0 for counters never published.
  double value(const std::string& name) const;

  std::map<std::string, double> snapshot() const;

  /// Forget everything (tests; the CLI before a measured run).
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> values_;
};

}  // namespace ewc::trace
