// Process-wide named counters for runtime observability.
//
// The caching/parallel layer (SimCache, ThreadPool, QueueSimulator,
// DecisionEngine) and the server publish statistics here under dotted names
// ("queue_sim.run_cache.hits", "server.requests", ...), and reporting
// surfaces — `ewcsim cache-stats`, `ewcsim stats`, the bench harnesses —
// read one coherent snapshot instead of threading stats structs through
// every layer. Counters are doubles: most are event counts, some are rates.
//
// Hot paths should resolve a Counters::Handle once (one registry lookup
// under the mutex) and bump through it: a handle is a pointer to the
// counter's atomic cell, so add()/inc() are a single relaxed fetch_add with
// no lock and no string hashing. Cells live as long as the process — clear()
// zeroes them in place — so a cached handle never dangles. The string-keyed
// add()/set()/inc() remain as thin wrappers (lookup + atomic op) for cold
// paths.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace ewc::trace {

class Counters {
 public:
  /// A borrowed pointer to one counter's atomic cell. Cheap to copy; valid
  /// for the life of the process once obtained from handle(). The
  /// default-constructed handle is a safe no-op sink.
  class Handle {
   public:
    Handle() = default;

    void add(double delta) {
      if (cell_ == nullptr) return;
      cell_->fetch_add(delta, std::memory_order_relaxed);
    }
    void inc() { add(1.0); }
    void set(double value) {
      if (cell_ == nullptr) return;
      cell_->store(value, std::memory_order_relaxed);
    }
    double value() const {
      return cell_ == nullptr ? 0.0
                              : cell_->load(std::memory_order_relaxed);
    }
    explicit operator bool() const { return cell_ != nullptr; }

   private:
    friend class Counters;
    explicit Handle(std::atomic<double>* cell) : cell_(cell) {}
    std::atomic<double>* cell_ = nullptr;
  };

  /// The process-wide registry.
  static Counters& instance();

  /// Resolve (registering on first use) the counter's cell. The slow path:
  /// call once per site, keep the handle.
  Handle handle(const std::string& name);

  // String-keyed convenience wrappers: one registry lookup per call.
  void set(const std::string& name, double value) {
    handle(name).set(value);
  }
  void add(const std::string& name, double delta) {
    handle(name).add(delta);
  }
  /// add(name, 1.0) — the common event-count case (server accept/reject...).
  void inc(const std::string& name) { add(name, 1.0); }

  /// 0.0 for counters never published.
  double value(const std::string& name) const;

  std::map<std::string, double> snapshot() const;

  /// Zero every counter in place (tests; the CLI before a measured run).
  /// Registered cells — and therefore outstanding handles — stay valid.
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<std::atomic<double>>> cells_;
};

}  // namespace ewc::trace
