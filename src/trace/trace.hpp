// Data-center request traces.
//
// The paper assumes "many users simultaneously sending requests to a set of
// known applications". This module synthesizes such traces: Poisson arrivals
// over a weighted workload mix, reproducible from a seed. The datacenter
// example and the decision-policy ablation consume these traces.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace ewc::trace {

struct Request {
  double arrival_seconds = 0.0;
  std::string workload;  ///< workload label (matches an InstanceSpec name)
  int user_id = 0;
};

/// One entry of the workload mix with its relative popularity.
struct MixEntry {
  std::string workload;
  double weight = 1.0;
};

class PoissonTraceGenerator {
 public:
  /// @param mix   workload popularity weights (must be non-empty, weights > 0)
  /// @param rate  aggregate arrival rate, requests / second
  /// @throws std::invalid_argument on empty mix / non-positive inputs.
  PoissonTraceGenerator(std::vector<MixEntry> mix, double rate,
                        std::uint64_t seed = 0xDA7Aull);

  /// Generate requests until `count` have arrived.
  std::vector<Request> generate(int count);

  /// Generate all requests arriving within [0, horizon_seconds).
  std::vector<Request> generate_until(double horizon_seconds);

 private:
  Request next();

  std::vector<MixEntry> mix_;
  double total_weight_ = 0.0;
  double rate_;
  double clock_ = 0.0;
  int next_user_ = 0;
  common::Rng rng_;
};

/// Group consecutive requests into backend batches of `batch_size` (the
/// paper's threshold): returns per-batch workload-name lists.
std::vector<std::vector<std::string>> batch_workloads(
    const std::vector<Request>& requests, int batch_size);

}  // namespace ewc::trace
