#include "trace/trace.hpp"

#include <stdexcept>

namespace ewc::trace {

PoissonTraceGenerator::PoissonTraceGenerator(std::vector<MixEntry> mix,
                                             double rate, std::uint64_t seed)
    : mix_(std::move(mix)), rate_(rate), rng_(seed) {
  if (mix_.empty()) {
    throw std::invalid_argument("PoissonTraceGenerator: empty mix");
  }
  if (rate_ <= 0.0) {
    throw std::invalid_argument("PoissonTraceGenerator: rate must be positive");
  }
  for (const auto& m : mix_) {
    if (m.weight <= 0.0) {
      throw std::invalid_argument("PoissonTraceGenerator: weights must be > 0");
    }
    total_weight_ += m.weight;
  }
}

Request PoissonTraceGenerator::next() {
  clock_ += rng_.exponential(rate_);
  double pick = rng_.uniform(0.0, total_weight_);
  const MixEntry* chosen = &mix_.back();
  for (const auto& m : mix_) {
    if (pick < m.weight) {
      chosen = &m;
      break;
    }
    pick -= m.weight;
  }
  Request r;
  r.arrival_seconds = clock_;
  r.workload = chosen->workload;
  r.user_id = next_user_++;
  return r;
}

std::vector<Request> PoissonTraceGenerator::generate(int count) {
  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(next());
  return out;
}

std::vector<Request> PoissonTraceGenerator::generate_until(
    double horizon_seconds) {
  std::vector<Request> out;
  for (;;) {
    Request r = next();
    if (r.arrival_seconds >= horizon_seconds) break;
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<std::vector<std::string>> batch_workloads(
    const std::vector<Request>& requests, int batch_size) {
  if (batch_size <= 0) {
    throw std::invalid_argument("batch_workloads: batch_size must be > 0");
  }
  std::vector<std::vector<std::string>> batches;
  std::vector<std::string> current;
  for (const auto& r : requests) {
    current.push_back(r.workload);
    if (static_cast<int>(current.size()) == batch_size) {
      batches.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) batches.push_back(std::move(current));
  return batches;
}

}  // namespace ewc::trace
