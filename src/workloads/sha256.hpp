// SHA-256 hashing workload (enterprise integrity / dedup services — the
// "encryption etc." class of the paper's enterprise kernels).
//
// A full FIPS-180-4 implementation for functional correctness, plus the GPU
// descriptor of a batched-hash kernel: one thread hashes one message, the
// compression function is pure 32-bit integer arithmetic with the message
// schedule held in registers — compute-bound, integer-heavy, a contrast to
// AES's table-lookup profile.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cpusim/task.hpp"
#include "gpusim/kernel_desc.hpp"

namespace ewc::workloads {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// FIPS-180-4 SHA-256 of a byte buffer.
Sha256Digest sha256(std::span<const std::uint8_t> data);

/// Digest rendered as 64 lowercase hex characters.
std::string sha256_hex(std::span<const std::uint8_t> data);

struct Sha256Params {
  std::size_t num_messages = 8 * 1024;
  std::size_t message_bytes = 512;
  int threads_per_block = 256;
};

/// GPU kernel: one thread per message, grid sized accordingly.
gpusim::KernelDesc sha256_kernel_desc(const Sha256Params& p);

cpusim::CpuTask sha256_cpu_task(const Sha256Params& p, int instance_id = 0);

}  // namespace ewc::workloads
