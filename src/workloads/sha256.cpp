#include "workloads/sha256.hpp"

#include <cstring>

namespace ewc::workloads {

namespace {

constexpr std::uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

void compress(std::uint32_t state[8], const std::uint8_t block[64]) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

}  // namespace

Sha256Digest sha256(std::span<const std::uint8_t> data) {
  std::uint32_t state[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

  // Full blocks.
  std::size_t offset = 0;
  while (offset + 64 <= data.size()) {
    compress(state, data.data() + offset);
    offset += 64;
  }

  // Padding: 0x80, zeros, 64-bit big-endian bit length.
  std::uint8_t last[128] = {};
  const std::size_t rem = data.size() - offset;
  std::memcpy(last, data.data() + offset, rem);
  last[rem] = 0x80;
  const std::size_t pad_blocks = rem + 9 <= 64 ? 1 : 2;
  const std::uint64_t bits = static_cast<std::uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    last[pad_blocks * 64 - 1 - i] =
        static_cast<std::uint8_t>(bits >> (8 * i));
  }
  compress(state, last);
  if (pad_blocks == 2) compress(state, last + 64);

  Sha256Digest digest;
  for (int i = 0; i < 8; ++i) {
    digest[static_cast<std::size_t>(4 * i)] = static_cast<std::uint8_t>(state[i] >> 24);
    digest[static_cast<std::size_t>(4 * i + 1)] = static_cast<std::uint8_t>(state[i] >> 16);
    digest[static_cast<std::size_t>(4 * i + 2)] = static_cast<std::uint8_t>(state[i] >> 8);
    digest[static_cast<std::size_t>(4 * i + 3)] = static_cast<std::uint8_t>(state[i]);
  }
  return digest;
}

std::string sha256_hex(std::span<const std::uint8_t> data) {
  static const char* hex = "0123456789abcdef";
  const Sha256Digest d = sha256(data);
  std::string out;
  out.reserve(64);
  for (std::uint8_t b : d) {
    out.push_back(hex[b >> 4]);
    out.push_back(hex[b & 0xF]);
  }
  return out;
}

gpusim::KernelDesc sha256_kernel_desc(const Sha256Params& p) {
  gpusim::KernelDesc k;
  k.name = "sha256";
  k.threads_per_block = p.threads_per_block;
  k.num_blocks = static_cast<int>(
      (p.num_messages + p.threads_per_block - 1) / p.threads_per_block);

  // Per 64-byte block: 64 rounds x ~14 integer ops + 48 schedule expansions
  // x ~10 ops; the message streams in coalesced, the schedule stays in
  // registers.
  const double blocks_per_msg =
      static_cast<double>((p.message_bytes + 9 + 63) / 64);
  gpusim::InstructionMix per_block;
  per_block.int_insts = 64.0 * 14.0 + 48.0 * 10.0;
  per_block.coalesced_mem_insts = 64.0 / 128.0;  // 64 B per warp-spread load
  k.mix = per_block.scaled(blocks_per_msg);
  k.mix.coalesced_mem_insts += 1.0;  // digest write-back

  k.resources.registers_per_thread = 32;  // state + schedule window
  k.h2d_bytes = common::Bytes::from_bytes(
      static_cast<double>(p.num_messages) * p.message_bytes);
  k.d2h_bytes =
      common::Bytes::from_bytes(static_cast<double>(p.num_messages) * 32.0);
  return k;
}

cpusim::CpuTask sha256_cpu_task(const Sha256Params& p, int instance_id) {
  cpusim::CpuTask t;
  t.name = "sha256";
  t.instance_id = instance_id;
  // Profile: ~14 cycles/byte scalar SHA-256 on the E5520.
  const double cycles = 14.0 * static_cast<double>(p.num_messages) *
                        static_cast<double>(p.message_bytes);
  t.core_seconds = cycles / 2.27e9;
  t.threads = 8;
  t.cache_sensitivity = 0.2;  // register-resident compression
  return t;
}

}  // namespace ewc::workloads
