#include "workloads/kmeans.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ewc::workloads {

namespace {
double sq_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}
}  // namespace

KmeansResult kmeans_cluster(const std::vector<std::vector<double>>& points,
                            int k, int max_iterations, double tolerance) {
  if (points.empty() || k < 1 || static_cast<std::size_t>(k) > points.size()) {
    throw std::invalid_argument("kmeans_cluster: bad inputs");
  }
  const std::size_t dim = points.front().size();
  for (const auto& p : points) {
    if (p.size() != dim) {
      throw std::invalid_argument("kmeans_cluster: ragged points");
    }
  }

  KmeansResult result;
  // Deterministic farthest-point initialization (k-means++ without the
  // randomness): start from the first point, then repeatedly pick the point
  // farthest from its nearest chosen centroid. Avoids the degenerate local
  // optima of first-k seeding.
  result.centroids.push_back(points.front());
  std::vector<double> nearest(points.size(),
                              std::numeric_limits<double>::infinity());
  while (static_cast<int>(result.centroids.size()) < k) {
    std::size_t farthest = 0;
    double far_d = -1.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      nearest[i] = std::min(nearest[i],
                            sq_distance(points[i], result.centroids.back()));
      if (nearest[i] > far_d) {
        far_d = nearest[i];
        farthest = i;
      }
    }
    if (far_d <= 0.0) {
      throw std::invalid_argument(
          "kmeans_cluster: fewer distinct points than k");
    }
    result.centroids.push_back(points[farthest]);
  }

  result.assignment.assign(points.size(), -1);
  for (int iter = 0; iter < max_iterations; ++iter) {
    result.iterations_run = iter + 1;
    // Assignment step.
    bool changed = false;
    for (std::size_t i = 0; i < points.size(); ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const double d =
            sq_distance(points[i], result.centroids[static_cast<std::size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    // Update step.
    std::vector<std::vector<double>> sums(
        static_cast<std::size_t>(k), std::vector<double>(dim, 0.0));
    std::vector<int> counts(static_cast<std::size_t>(k), 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      auto c = static_cast<std::size_t>(result.assignment[i]);
      counts[c] += 1;
      for (std::size_t d = 0; d < dim; ++d) sums[c][d] += points[i][d];
    }
    double shift = 0.0;
    for (int c = 0; c < k; ++c) {
      auto cu = static_cast<std::size_t>(c);
      if (counts[cu] == 0) continue;  // empty cluster keeps its centroid
      std::vector<double> next(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        next[d] = sums[cu][d] / counts[cu];
      }
      shift += std::sqrt(sq_distance(next, result.centroids[cu]));
      result.centroids[cu] = std::move(next);
    }
    if (!changed || shift < tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

gpusim::KernelDesc kmeans_kernel_desc(const KmeansParams& p) {
  gpusim::KernelDesc k;
  k.name = "kmeans";
  k.threads_per_block = p.threads_per_block;
  k.num_blocks = static_cast<int>(
      (p.num_points + p.threads_per_block - 1) / p.threads_per_block);

  // Per point per iteration: stream the point (coalesced), k x dim FMAs for
  // the distances, one scatter into the centroid accumulators.
  const double dim = p.dimensions;
  const double kk = p.clusters;
  gpusim::InstructionMix per_iter;
  per_iter.coalesced_mem_insts = dim / 32.0;  // float per thread, per dim
  per_iter.fp_insts = 3.0 * dim * kk;         // sub, mul, add per dim per c
  per_iter.int_insts = 2.0 * kk + 6.0;
  per_iter.uncoalesced_mem_insts = 0.05;  // centroid scatter (atomics)
  per_iter.shared_accesses = dim;         // centroids cached in shared mem
  per_iter.sync_insts = 0.01;
  k.mix = per_iter.scaled(p.iterations);

  k.resources.registers_per_thread = 24;
  k.resources.shared_mem_per_block =
      static_cast<std::int64_t>(p.clusters) * p.dimensions * 4;
  k.h2d_bytes = common::Bytes::from_bytes(
      static_cast<double>(p.num_points) * p.dimensions * 4.0);
  k.d2h_bytes = common::Bytes::from_bytes(
      static_cast<double>(p.num_points) * 4.0);  // assignments
  return k;
}

cpusim::CpuTask kmeans_cpu_task(const KmeansParams& p, int instance_id) {
  cpusim::CpuTask t;
  t.name = "kmeans";
  t.instance_id = instance_id;
  // Profile: ~4 cycles per dimension per cluster per point per iteration.
  const double cycles = 4.0 * p.dimensions * p.clusters *
                        static_cast<double>(p.num_points) * p.iterations;
  t.core_seconds = cycles / 2.27e9;
  t.threads = 8;
  t.cache_sensitivity = 0.55;  // working set is the point stream
  return t;
}

}  // namespace ewc::workloads
