#include "workloads/rodinia_like.hpp"

namespace ewc::workloads {

namespace {

gpusim::KernelDesc base(const char* name, int blocks, int threads) {
  gpusim::KernelDesc k;
  k.name = name;
  k.num_blocks = blocks;
  k.threads_per_block = threads;
  k.resources.registers_per_thread = 16;
  k.h2d_bytes = common::Bytes::from_mib(8.0);
  k.d2h_bytes = common::Bytes::from_mib(4.0);
  return k;
}

}  // namespace

std::vector<gpusim::KernelDesc> rodinia_training_kernels() {
  std::vector<gpusim::KernelDesc> ks;

  {  // kmeans: distance kernel — FP + coalesced streaming.
    auto k = base("kmeans_distance", 60, 256);
    k.mix.fp_insts = 5.0e5;
    k.mix.int_insts = 1.2e5;
    k.mix.coalesced_mem_insts = 1.6e4;
    ks.push_back(k);
  }
  {  // kmeans: membership swap — integer + uncoalesced gathers.
    auto k = base("kmeans_swap", 60, 256);
    k.mix.int_insts = 2.4e5;
    k.mix.uncoalesced_mem_insts = 2.5e3;
    k.mix.coalesced_mem_insts = 3.0e3;
    ks.push_back(k);
  }
  {  // bfs: frontier expansion — uncoalesced, divergent, integer-heavy.
    auto k = base("bfs_expand", 90, 256);
    k.mix.int_insts = 1.6e5;
    k.mix.uncoalesced_mem_insts = 4.0e3;
    ks.push_back(k);
  }
  {  // hotspot: stencil — FP + shared memory + barriers.
    auto k = base("hotspot_stencil", 56, 256);
    k.mix.fp_insts = 4.2e5;
    k.mix.shared_accesses = 2.2e5;
    k.mix.sync_insts = 3.0e3;
    k.mix.coalesced_mem_insts = 8.0e3;
    k.resources.shared_mem_per_block = 8 * 1024;
    ks.push_back(k);
  }
  {  // srad 1: extraction — SFU (exp/log) heavy.
    auto k = base("srad_extract", 64, 256);
    k.mix.fp_insts = 2.5e5;
    k.mix.sfu_insts = 9.0e4;
    k.mix.coalesced_mem_insts = 7.0e3;
    ks.push_back(k);
  }
  {  // srad 2: diffusion update — balanced FP/memory.
    auto k = base("srad_update", 64, 256);
    k.mix.fp_insts = 3.0e5;
    k.mix.coalesced_mem_insts = 2.0e4;
    k.mix.int_insts = 8.0e4;
    ks.push_back(k);
  }
  {  // lud: blocked factorization — shared memory + heavy synchronization.
     // The barrier count makes this kernel barrier-stall-bound (like the
     // sorting networks), so the regression sees high shared-access rates
     // at low issue utilization — a corner the evaluation workloads hit.
    auto k = base("lud_internal", 32, 256);
    k.mix.fp_insts = 2.5e5;
    k.mix.shared_accesses = 5.5e5;
    k.mix.sync_insts = 6.0e4;
    k.mix.coalesced_mem_insts = 4.0e3;
    k.resources.shared_mem_per_block = 12 * 1024;
    ks.push_back(k);
  }
  {  // nw: wavefront alignment — integer + constant (scoring matrix).
    auto k = base("nw_wavefront", 31, 128);
    k.mix.int_insts = 3.2e5;
    k.mix.const_accesses = 1.4e5;
    k.mix.shared_accesses = 9.0e4;
    k.mix.sync_insts = 4.0e3;
    ks.push_back(k);
  }
  {  // backprop: forward layer — FP + coalesced, few barriers.
    auto k = base("backprop_forward", 48, 256);
    k.mix.fp_insts = 6.5e5;
    k.mix.coalesced_mem_insts = 1.1e4;
    k.mix.shared_accesses = 6.0e4;
    k.mix.sync_insts = 1.0e3;
    ks.push_back(k);
  }
  {  // backprop: weight adjust — mixed streaming, uncoalesced updates.
    auto k = base("backprop_adjust", 48, 256);
    k.mix.fp_insts = 2.0e5;
    k.mix.coalesced_mem_insts = 9.0e3;
    k.mix.uncoalesced_mem_insts = 1.2e3;
    ks.push_back(k);
  }
  // Size the kernels to run tens of simulated seconds, like the paper's
  // Rodinia runs: long enough for the 1 Hz meter and for the thermal
  // response to matter during training.
  for (auto& k : ks) k = k.with_work_scale(1000.0);
  return ks;
}

}  // namespace ewc::workloads
