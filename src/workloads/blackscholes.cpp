#include "workloads/blackscholes.hpp"

#include <cmath>
#include <stdexcept>

namespace ewc::workloads {

namespace {
/// Cumulative normal distribution via the erfc identity.
double cnd(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }
}  // namespace

OptionPrice black_scholes(const OptionInput& opt, double r, double sigma) {
  if (opt.spot <= 0.0 || opt.strike <= 0.0 || opt.years <= 0.0 ||
      sigma <= 0.0) {
    throw std::invalid_argument("black_scholes: inputs must be positive");
  }
  const double sqrt_t = std::sqrt(opt.years);
  const double d1 =
      (std::log(opt.spot / opt.strike) + (r + 0.5 * sigma * sigma) * opt.years) /
      (sigma * sqrt_t);
  const double d2 = d1 - sigma * sqrt_t;
  const double discount = std::exp(-r * opt.years);

  OptionPrice p;
  p.call = opt.spot * cnd(d1) - opt.strike * discount * cnd(d2);
  p.put = opt.strike * discount * cnd(-d2) - opt.spot * cnd(-d1);
  return p;
}

std::vector<OptionPrice> black_scholes_batch(std::span<const OptionInput> opts,
                                             double r, double sigma) {
  std::vector<OptionPrice> out;
  out.reserve(opts.size());
  for (const auto& o : opts) out.push_back(black_scholes(o, r, sigma));
  return out;
}

gpusim::KernelDesc blackscholes_kernel_desc(const BlackScholesParams& p) {
  gpusim::KernelDesc k;
  k.name = "blackscholes";
  k.num_blocks = p.num_blocks;
  k.threads_per_block = p.threads_per_block;

  // Each thread grid-strides over its share of the option array.
  const double threads =
      static_cast<double>(p.num_blocks) * p.threads_per_block;
  const double options_per_thread =
      static_cast<double>(p.num_options) / threads;

  // Per option: two CND evaluations (exp/log/sqrt -> SFU), ~60 FP ops,
  // one coalesced load of (spot, strike, t) and one store of (call, put).
  gpusim::InstructionMix per_option;
  per_option.fp_insts = 60.0;
  per_option.sfu_insts = 9.0;
  per_option.int_insts = 8.0;
  per_option.coalesced_mem_insts = 2.0;
  k.mix = per_option.scaled(options_per_thread * p.iterations);

  k.resources.registers_per_thread = 24;
  k.resources.shared_mem_per_block = 0;
  k.h2d_bytes = common::Bytes::from_bytes(
      static_cast<double>(p.num_options) * 3.0 * 4.0);  // float3 inputs
  k.d2h_bytes = common::Bytes::from_bytes(
      static_cast<double>(p.num_options) * 2.0 * 4.0);  // call+put
  return k;
}

cpusim::CpuTask blackscholes_cpu_task(const BlackScholesParams& p,
                                      int instance_id) {
  cpusim::CpuTask t;
  t.name = "blackscholes";
  t.instance_id = instance_id;
  // Profile: ~190 cycles per option on the E5520 (scalar exp/log dominate).
  const double cycles =
      190.0 * static_cast<double>(p.num_options) * p.iterations;
  t.core_seconds = cycles / 2.27e9;
  t.threads = 8;
  t.cache_sensitivity = 0.3;
  return t;
}

}  // namespace ewc::workloads
