// Training benchmarks for the power model (paper Section VI).
//
// The paper trains its regression on 6 Rodinia benchmarks (10 GPU kernels).
// These descriptors model the corresponding kernels' instruction mixes so
// the training set spans the power model's feature space: FP-heavy,
// integer-heavy, SFU-heavy, coalesced- and uncoalesced-streaming,
// shared-memory-heavy and constant-heavy points.
#pragma once

#include <vector>

#include "gpusim/kernel_desc.hpp"

namespace ewc::workloads {

/// The 10 training kernels (kmeans x2, bfs, hotspot, srad x2, lud, nw,
/// backprop x2), sized to run for a few simulated seconds each.
std::vector<gpusim::KernelDesc> rodinia_training_kernels();

}  // namespace ewc::workloads
