// Search workload (paper ref [7]: enterprise text search kernels).
//
// Each user request scans a document corpus chunk for a needle string and
// returns match counts — a streaming, memory-bound kernel with coalesced
// reads and integer comparisons. One 10 K-element instance occupies 10
// blocks (Table 1). In Scenario 2 / Tables 5-6 search is the long
// memory-bound partner consolidated with compute-bound BlackScholes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "cpusim/task.hpp"
#include "gpusim/kernel_desc.hpp"

namespace ewc::workloads {

/// Count occurrences of `needle` in `haystack` (overlapping matches count).
std::size_t count_matches(std::string_view haystack, std::string_view needle);

struct SearchParams {
  std::size_t corpus_bytes = 10 * 1024;  ///< paper: 10 K input
  std::size_t needle_bytes = 8;
  int threads_per_block = 256;
  double iterations = 1.0;  ///< scan passes per request (query batches)
};

/// GPU kernel: each thread scans a 4-byte-aligned window; 10 K @ 256
/// threads x 4 B -> 10 blocks, matching Table 1.
gpusim::KernelDesc search_kernel_desc(const SearchParams& p);

cpusim::CpuTask search_cpu_task(const SearchParams& p, int instance_id = 0);

}  // namespace ewc::workloads
