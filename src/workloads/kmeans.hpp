// K-means clustering workload (the paper's motivating "data mining and
// analytics" enterprise class; also the first Rodinia training benchmark).
//
// Functional Lloyd's algorithm on dense float vectors plus the GPU kernel
// descriptor of the classic CUDA implementation: the assignment step streams
// points coalesced and is FP-heavy; the update step scatters into centroid
// accumulators (uncoalesced atomics).
#pragma once

#include <cstddef>
#include <vector>

#include "cpusim/task.hpp"
#include "gpusim/kernel_desc.hpp"

namespace ewc::workloads {

struct KmeansResult {
  std::vector<std::vector<double>> centroids;  ///< k x dim
  std::vector<int> assignment;                 ///< one entry per point
  int iterations_run = 0;
  bool converged = false;
};

/// Lloyd's algorithm. Points are row-major `n x dim`; initial centroids are
/// the first k distinct points. Deterministic.
/// @throws std::invalid_argument for empty input, k < 1 or k > n.
KmeansResult kmeans_cluster(const std::vector<std::vector<double>>& points,
                            int k, int max_iterations = 50,
                            double tolerance = 1e-6);

struct KmeansParams {
  std::size_t num_points = 16 * 1024;
  int dimensions = 16;
  int clusters = 8;
  int iterations = 20;
  int threads_per_block = 256;
};

/// GPU kernel: one thread per point per iteration (assignment + partial
/// update), grid-strided.
gpusim::KernelDesc kmeans_kernel_desc(const KmeansParams& p);

cpusim::CpuTask kmeans_cpu_task(const KmeansParams& p, int instance_id = 0);

}  // namespace ewc::workloads
