#include "workloads/registry.hpp"

#include <cstring>
#include <stdexcept>

#include "workloads/aes.hpp"
#include "workloads/blackscholes.hpp"
#include "workloads/compression.hpp"
#include "workloads/kmeans.hpp"
#include "workloads/montecarlo.hpp"
#include "workloads/search.hpp"
#include "workloads/sha256.hpp"
#include "workloads/sort.hpp"

namespace ewc::workloads {

namespace {

template <class Args>
Args unmarshal(std::span<const std::byte> bytes) {
  Args args{};  // defaults when the app passed nothing
  if (!bytes.empty()) {
    if (bytes.size() < sizeof(Args)) {
      throw std::invalid_argument("kernel argument block too small");
    }
    std::memcpy(&args, bytes.data(), sizeof(Args));
  }
  return args;
}

/// Apply the caller's execution configuration over the descriptor defaults.
gpusim::KernelDesc shaped(gpusim::KernelDesc k,
                          const cudart::LaunchConfig& cfg) {
  if (cfg.valid) {
    k.num_blocks = static_cast<int>(cfg.grid.count());
    k.threads_per_block = static_cast<int>(cfg.block.count());
    if (cfg.shared_mem_bytes > 0) {
      k.resources.shared_mem_per_block =
          static_cast<std::int64_t>(cfg.shared_mem_bytes);
    }
  }
  return k;
}

}  // namespace

void register_paper_kernels(cudart::KernelRegistry& registry) {
  registry.register_kernel(
      "aes_encrypt",
      [](const cudart::LaunchConfig& cfg, std::span<const std::byte> raw) {
        const auto a = unmarshal<AesArgs>(raw);
        AesParams p;
        p.input_bytes = a.input_bytes;
        p.threads_per_block =
            cfg.valid ? static_cast<int>(cfg.block.count()) : 256;
        p.iterations = a.iterations;
        return shaped(aes_kernel_desc(p), cfg);
      });

  registry.register_kernel(
      "bitonic_sort",
      [](const cudart::LaunchConfig& cfg, std::span<const std::byte> raw) {
        const auto a = unmarshal<SortArgs>(raw);
        SortParams p;
        p.num_elements = a.num_elements;
        p.threads_per_block =
            cfg.valid ? static_cast<int>(cfg.block.count()) : 256;
        p.iterations = a.iterations;
        return shaped(sort_kernel_desc(p), cfg);
      });

  registry.register_kernel(
      "search",
      [](const cudart::LaunchConfig& cfg, std::span<const std::byte> raw) {
        const auto a = unmarshal<SearchArgs>(raw);
        SearchParams p;
        p.corpus_bytes = a.corpus_bytes;
        p.needle_bytes = a.needle_bytes;
        p.threads_per_block =
            cfg.valid ? static_cast<int>(cfg.block.count()) : 256;
        p.iterations = a.iterations;
        return shaped(search_kernel_desc(p), cfg);
      });

  registry.register_kernel(
      "blackscholes",
      [](const cudart::LaunchConfig& cfg, std::span<const std::byte> raw) {
        const auto a = unmarshal<BlackScholesArgs>(raw);
        BlackScholesParams p;
        p.num_options = a.num_options;
        if (cfg.valid) {
          p.num_blocks = static_cast<int>(cfg.grid.count());
          p.threads_per_block = static_cast<int>(cfg.block.count());
        }
        p.iterations = a.iterations;
        return shaped(blackscholes_kernel_desc(p), cfg);
      });

  registry.register_kernel(
      "montecarlo",
      [](const cudart::LaunchConfig& cfg, std::span<const std::byte> raw) {
        const auto a = unmarshal<MonteCarloArgs>(raw);
        MonteCarloParams p;
        if (cfg.valid) {
          p.num_blocks = static_cast<int>(cfg.grid.count());
          p.threads_per_block = static_cast<int>(cfg.block.count());
        }
        p.path_steps = a.path_steps;
        p.state_in_global = a.state_in_global != 0;
        return shaped(montecarlo_kernel_desc(p), cfg);
      });

  registry.register_kernel(
      "kmeans",
      [](const cudart::LaunchConfig& cfg, std::span<const std::byte> raw) {
        const auto a = unmarshal<KmeansArgs>(raw);
        KmeansParams p;
        p.num_points = a.num_points;
        p.dimensions = static_cast<int>(a.dimensions);
        p.clusters = static_cast<int>(a.clusters);
        p.iterations = static_cast<int>(a.iterations);
        if (cfg.valid) {
          p.threads_per_block = static_cast<int>(cfg.block.count());
        }
        return shaped(kmeans_kernel_desc(p), cfg);
      });

  registry.register_kernel(
      "sha256",
      [](const cudart::LaunchConfig& cfg, std::span<const std::byte> raw) {
        const auto a = unmarshal<Sha256Args>(raw);
        Sha256Params p;
        p.num_messages = a.num_messages;
        p.message_bytes = a.message_bytes;
        if (cfg.valid) {
          p.threads_per_block = static_cast<int>(cfg.block.count());
        }
        return shaped(sha256_kernel_desc(p), cfg);
      });

  registry.register_kernel(
      "compression",
      [](const cudart::LaunchConfig& cfg, std::span<const std::byte> raw) {
        const auto a = unmarshal<CompressionArgs>(raw);
        CompressionParams p;
        p.input_bytes = a.input_bytes;
        p.chunk_bytes = a.chunk_bytes;
        if (cfg.valid) {
          p.threads_per_block = static_cast<int>(cfg.block.count());
        }
        return shaped(compression_kernel_desc(p), cfg);
      });
}

}  // namespace ewc::workloads
