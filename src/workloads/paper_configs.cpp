#include "workloads/paper_configs.hpp"

#include <algorithm>

#include "gpusim/engine.hpp"
#include "perf/analytic.hpp"
#include "workloads/aes.hpp"
#include "workloads/blackscholes.hpp"
#include "workloads/compression.hpp"
#include "workloads/kmeans.hpp"
#include "workloads/montecarlo.hpp"
#include "workloads/search.hpp"
#include "workloads/sha256.hpp"
#include "workloads/sort.hpp"

namespace ewc::workloads {

gpusim::KernelDesc calibrate_gpu_seconds(gpusim::KernelDesc k,
                                         double target_seconds,
                                         const gpusim::DeviceConfig& dev) {
  perf::AnalyticModel model(dev);
  for (int iter = 0; iter < 3; ++iter) {
    const auto pred = model.predict(k);
    const double xfer = pred.h2d_time.seconds() + pred.d2h_time.seconds();
    const double kern = pred.kernel_time.seconds();
    const double want = std::max(1e-6, target_seconds - xfer);
    if (kern <= 0.0) break;
    k = k.with_work_scale(want / kern);
  }
  return k;
}

cpusim::CpuTask calibrate_cpu_seconds(const std::string& name, double seconds,
                                      int threads, double cache_sensitivity) {
  cpusim::CpuTask t;
  t.name = name;
  t.threads = threads;
  t.cache_sensitivity = cache_sensitivity;
  // A lone instance drains at `threads` core-seconds per second.
  t.core_seconds = seconds * threads;
  return t;
}

namespace {

InstanceSpec make_spec(std::string name, gpusim::KernelDesc gpu,
                       double gpu_seconds, double cpu_seconds,
                       int cpu_threads, double cache_sensitivity) {
  InstanceSpec s;
  s.name = name;
  s.gpu = calibrate_gpu_seconds(std::move(gpu), gpu_seconds,
                                gpusim::tesla_c1060());
  s.cpu = calibrate_cpu_seconds(name, cpu_seconds, cpu_threads,
                                cache_sensitivity);
  s.paper_gpu_seconds = gpu_seconds;
  s.paper_cpu_seconds = cpu_seconds;
  return s;
}

}  // namespace

// ---------------- Table 1 / homogeneous figures ----------------
// Paper quotes speedups, not absolute times, for Table 1; single-instance
// times are chosen at enterprise-request scale (seconds) with the quoted
// GPU-over-CPU speedup. Figure 1's text fixes encryption: GPU is 16% slower
// and 1.5x the energy of CPU for one 12 KB instance.

InstanceSpec encryption_12k() {
  AesParams p;
  p.input_bytes = 12 * 1024;
  p.threads_per_block = 256;
  return make_spec("encryption_12k", aes_kernel_desc(p),
                   /*gpu=*/2.38, /*cpu=*/2.0, /*threads=*/4, 0.35);
}

InstanceSpec encryption_6k() {
  AesParams p;
  p.input_bytes = 6 * 1024;
  p.threads_per_block = 128;
  return make_spec("encryption_6k", aes_kernel_desc(p),
                   /*gpu=*/4.0, /*cpu=*/0.6, /*threads=*/4, 0.35);
}

InstanceSpec sorting_6k() {
  SortParams p;
  p.num_elements = 6 * 1024;
  p.threads_per_block = 256;
  // 6 K elements at 4 per thread would need 6 blocks of 256 threads when the
  // tile is 1 K elements; Table 1 quotes 6 blocks.
  auto k = sort_kernel_desc(p);
  k.num_blocks = 6;
  return make_spec("sorting_6k", std::move(k),
                   /*gpu=*/2.0, /*cpu=*/2.9, /*threads=*/4, 0.6);
}

InstanceSpec search_10k() {
  SearchParams p;
  p.corpus_bytes = 10 * 1024;
  p.threads_per_block = 256;
  return make_spec("search_10k", search_kernel_desc(p),
                   /*gpu=*/2.5, /*cpu=*/1.2, /*threads=*/4, 0.7);
}

InstanceSpec blackscholes_4096k() {
  BlackScholesParams p;
  p.num_options = 4096 * 1024;
  p.num_blocks = 1;
  p.threads_per_block = 256;
  return make_spec("blackscholes_4096k", blackscholes_kernel_desc(p),
                   /*gpu=*/2.2, /*cpu=*/3.7, /*threads=*/8, 0.3);
}

InstanceSpec montecarlo_500k() {
  MonteCarloParams p;
  p.num_blocks = 1;
  p.threads_per_block = 128;
  p.path_steps = 500'000.0;
  return make_spec("montecarlo_500k", montecarlo_kernel_desc(p),
                   /*gpu=*/3.0, /*cpu=*/21.0, /*threads=*/8, 0.15);
}

// ---------------- Section III scenarios ----------------

InstanceSpec scenario1_montecarlo() {
  MonteCarloParams p;
  p.num_blocks = 45;
  p.threads_per_block = 128;
  p.path_steps = 50.0;  // paper: 50 computation iterations
  p.state_in_global = true;
  return make_spec("scenario1_mc", montecarlo_kernel_desc(p),
                   /*gpu=*/62.4, /*cpu=*/180.0, /*threads=*/8, 0.2);
}

InstanceSpec scenario1_encryption() {
  AesParams p;
  p.input_bytes = 15 * 256 * 16;  // 15 blocks x 256 threads x 16 B
  p.threads_per_block = 256;
  p.iterations = 1.0;  // paper: 1.0E+5 iterations; calibration rescales
  p.streaming = true;  // multi-pass requests stream the buffer from DRAM
  return make_spec("scenario1_encryption", aes_kernel_desc(p),
                   /*gpu=*/19.5, /*cpu=*/8.0, /*threads=*/4, 0.35);
}

InstanceSpec scenario2_blackscholes() {
  BlackScholesParams p;
  p.num_blocks = 45;
  p.threads_per_block = 256;
  p.iterations = 1000.0;  // paper: 1000 computation iterations
  p.num_options = 45 * 256;
  return make_spec("scenario2_bs", blackscholes_kernel_desc(p),
                   /*gpu=*/26.4, /*cpu=*/45.0, /*threads=*/8, 0.3);
}

InstanceSpec scenario2_search() {
  SearchParams p;
  p.corpus_bytes = 15 * 256 * 4;  // 15 blocks
  p.threads_per_block = 256;
  p.iterations = 6.0e6;  // paper: 6E+6 iterations; calibration rescales
  return make_spec("scenario2_search", search_kernel_desc(p),
                   /*gpu=*/49.2, /*cpu=*/25.0, /*threads=*/8, 0.7);
}

// ---------------- Section VIII heterogeneous experiments ----------------

// The Section VIII user requests are enterprise-sized (Table 1 grids): a
// search request occupies 10 blocks, a BlackScholes or MonteCarlo request a
// single block, an encryption request 15 blocks. Their memory behaviour is
// dependent-access dominated (mlp = 1), so a single instance leaves most of
// the device idle — which is precisely the headroom that makes the paper's
// 9x-19x consolidation wins possible.

InstanceSpec t56_search() {
  SearchParams p;
  p.corpus_bytes = 10 * 1024;  // Table 1: 10 K -> 10 blocks
  p.threads_per_block = 256;
  auto k = search_kernel_desc(p);
  k.mlp = 1.0;  // per-candidate verification chains, no pipelining
  return make_spec("search", std::move(k),
                   /*gpu=*/35.2, /*cpu=*/17.0, /*threads=*/2, 0.7);
}

InstanceSpec t56_blackscholes() {
  BlackScholesParams p;
  p.num_blocks = 1;  // Table 1: one block per request
  p.threads_per_block = 256;
  p.num_options = 256;
  return make_spec("blackscholes", blackscholes_kernel_desc(p),
                   /*gpu=*/34.2, /*cpu=*/57.4, /*threads=*/2, 0.3);
}

InstanceSpec t78_encryption() {
  AesParams p;
  p.input_bytes = 15 * 256 * 16;  // 15 blocks (paper Scenario 1 shape)
  p.threads_per_block = 256;
  auto k = aes_kernel_desc(p);
  k.mlp = 1.0;  // T-table gather chains: one outstanding miss per warp
  return make_spec("encryption", std::move(k),
                   /*gpu=*/45.7, /*cpu=*/7.2, /*threads=*/4, 0.35);
}

InstanceSpec t78_montecarlo() {
  MonteCarloParams p;
  p.num_blocks = 1;  // Table 1: one block per request
  p.threads_per_block = 128;
  p.path_steps = 500'000.0;
  p.state_in_global = false;  // the compute-bound SDK variant
  return make_spec("montecarlo", montecarlo_kernel_desc(p),
                   /*gpu=*/43.2, /*cpu=*/306.0, /*threads=*/2, 0.15);
}

namespace {

/// Uncalibrated spec: kernel and CPU profiles straight from the workload
/// modules; the reference seconds are measured once on the default node.
InstanceSpec first_principles_spec(const std::string& name,
                                   gpusim::KernelDesc gpu,
                                   cpusim::CpuTask cpu) {
  InstanceSpec s;
  s.name = name;
  s.gpu = std::move(gpu);
  s.cpu = std::move(cpu);
  s.cpu.name = name;
  gpusim::FluidEngine engine;
  gpusim::LaunchPlan plan;
  plan.instances.push_back(gpusim::KernelInstance{s.gpu, 0, ""});
  s.paper_gpu_seconds = engine.run(plan).total_time.seconds();
  s.paper_cpu_seconds = s.cpu.core_seconds / s.cpu.threads;
  return s;
}

}  // namespace

InstanceSpec kmeans_256k() {
  KmeansParams p;
  p.num_points = 256 * 1024;
  p.iterations = 400;  // analytics jobs iterate to convergence
  return first_principles_spec("kmeans", kmeans_kernel_desc(p),
                               kmeans_cpu_task(p));
}

InstanceSpec sha256_64k() {
  Sha256Params p;
  p.num_messages = 64 * 1024;
  p.message_bytes = 4096;
  return first_principles_spec("sha256", sha256_kernel_desc(p),
                               sha256_cpu_task(p));
}

InstanceSpec compression_64m() {
  CompressionParams p;
  p.input_bytes = std::size_t{64} * 1024 * 1024;
  p.chunk_bytes = 256 * 1024;
  auto k = compression_kernel_desc(p);
  k.mlp = 1.0;  // byte-granular dependent scanning cannot pipeline
  return first_principles_spec("compression", std::move(k),
                               compression_cpu_task(p));
}

std::vector<InstanceSpec> enterprise_specs() {
  return {encryption_12k(),   sorting_6k(),     search_10k(),
          t56_blackscholes(), t78_montecarlo(), kmeans_256k(),
          sha256_64k(),       compression_64m()};
}

std::vector<InstanceSpec> table1_specs() {
  return {encryption_12k(),      encryption_6k(), sorting_6k(),
          search_10k(),          blackscholes_4096k(),
          montecarlo_500k()};
}

std::vector<gpusim::KernelInstance> gpu_instances(const InstanceSpec& spec,
                                                  int count, int first_id) {
  std::vector<gpusim::KernelInstance> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    gpusim::KernelInstance inst;
    inst.desc = spec.gpu;
    inst.instance_id = first_id + i;
    inst.owner = spec.name + "#" + std::to_string(first_id + i);
    out.push_back(std::move(inst));
  }
  return out;
}

std::vector<cpusim::CpuTask> cpu_tasks(const InstanceSpec& spec, int count,
                                       int first_id) {
  std::vector<cpusim::CpuTask> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    cpusim::CpuTask t = spec.cpu;
    t.instance_id = first_id + i;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace ewc::workloads
