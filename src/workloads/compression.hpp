// Run-length + byte-pair compression workload (enterprise data services).
//
// A small, fully functional lossless codec (RLE with literal runs) used for
// the storage/ingest class of enterprise requests; the GPU descriptor models
// a chunk-parallel compressor: each thread block compresses an independent
// chunk with byte-granular (uncoalesced) scanning — the memory-divergent
// contrast to search's coalesced streaming.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cpusim/task.hpp"
#include "gpusim/kernel_desc.hpp"

namespace ewc::workloads {

/// RLE with literal runs: [control byte][payload]. Control < 128: copy
/// control+1 literal bytes; control >= 128: repeat next byte control-125
/// times (run length 3..130). Worst-case expansion ~1/128.
std::vector<std::uint8_t> rle_compress(std::span<const std::uint8_t> data);

/// Inverse of rle_compress. @throws std::invalid_argument on corrupt input.
std::vector<std::uint8_t> rle_decompress(std::span<const std::uint8_t> data);

struct CompressionParams {
  std::size_t input_bytes = 256 * 1024;
  std::size_t chunk_bytes = 16 * 1024;  ///< one thread block per chunk
  int threads_per_block = 128;
};

gpusim::KernelDesc compression_kernel_desc(const CompressionParams& p);

cpusim::CpuTask compression_cpu_task(const CompressionParams& p,
                                     int instance_id = 0);

}  // namespace ewc::workloads
