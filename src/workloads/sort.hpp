// Sorting workload (paper ref [27]: parallel sorting competition kernels).
//
// Enterprise requests sort small batches (6 K elements in the paper). The
// functional implementation is a bitonic sort — the classic GPU sorting
// network — whose GPU realization is shared-memory and barrier heavy with
// coalesced global traffic. One instance occupies 6 blocks (Table 1), so
// consolidated instances spread over otherwise-idle SMs without contending:
// this is why Figure 8's manual-consolidation time stays flat.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cpusim/task.hpp"
#include "gpusim/kernel_desc.hpp"

namespace ewc::workloads {

/// In-place bitonic sort; handles any size by virtual padding with +inf.
void bitonic_sort(std::vector<std::uint32_t>& data);

/// Convenience: returns a sorted copy.
std::vector<std::uint32_t> bitonic_sorted(std::span<const std::uint32_t> data);

struct SortParams {
  std::size_t num_elements = 6 * 1024;  ///< paper: 6 K keys
  int threads_per_block = 256;
  double iterations = 1.0;  ///< sorts per request (batched requests)
};

/// GPU kernel: each block bitonic-sorts a 1 K-element tile in shared memory,
/// then blocks cooperate on the merge stages. 6 K elements @ 256 threads ->
/// 6 blocks, matching Table 1.
gpusim::KernelDesc sort_kernel_desc(const SortParams& p);

cpusim::CpuTask sort_cpu_task(const SortParams& p, int instance_id = 0);

}  // namespace ewc::workloads
