#include "workloads/montecarlo.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace ewc::workloads {

McResult monte_carlo_call_price(double spot, double strike, double years,
                                double r, double sigma, std::size_t num_paths,
                                std::size_t steps_per_path,
                                std::uint64_t seed) {
  if (spot <= 0.0 || strike <= 0.0 || years <= 0.0 || sigma <= 0.0 ||
      num_paths == 0 || steps_per_path == 0) {
    throw std::invalid_argument("monte_carlo_call_price: bad inputs");
  }
  common::Rng rng(seed);
  const double dt = years / static_cast<double>(steps_per_path);
  const double drift = (r - 0.5 * sigma * sigma) * dt;
  const double vol = sigma * std::sqrt(dt);

  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t p = 0; p < num_paths; ++p) {
    double log_s = std::log(spot);
    for (std::size_t s = 0; s < steps_per_path; ++s) {
      log_s += drift + vol * rng.gaussian(0.0, 1.0);
    }
    const double payoff =
        std::max(0.0, std::exp(log_s) - strike) * std::exp(-r * years);
    sum += payoff;
    sum_sq += payoff * payoff;
  }
  const double n = static_cast<double>(num_paths);
  McResult result;
  result.price = sum / n;
  const double var = std::max(0.0, sum_sq / n - result.price * result.price);
  result.std_error = std::sqrt(var / n);
  return result;
}

gpusim::KernelDesc montecarlo_kernel_desc(const MonteCarloParams& p) {
  gpusim::KernelDesc k;
  k.name = p.state_in_global ? "montecarlo_gmem" : "montecarlo";
  k.num_blocks = p.num_blocks;
  k.threads_per_block = p.threads_per_block;

  // Per path step: Box-Muller RNG (2 SFU ops) + GBM update.
  gpusim::InstructionMix per_step;
  if (p.state_in_global) {
    // Few arithmetic ops survive per step — the state round trip dominates.
    per_step.fp_insts = 3.0;
    per_step.sfu_insts = 0.3;
    per_step.int_insts = 2.0;
  } else {
    per_step.fp_insts = 14.0;
    per_step.sfu_insts = 2.2;
    per_step.int_insts = 6.0;
  }
  if (p.state_in_global) {
    // Scenario-1 variant: the per-path state arrays (price, RNG state,
    // accumulators) are re-streamed from global memory every step. The
    // arrays are laid out structure-of-arrays, so the streams coalesce and
    // the kernel saturates DRAM bandwidth — which is exactly why
    // consolidating it with another memory-bound kernel is harmful.
    per_step.coalesced_mem_insts = 2.4;
    per_step.uncoalesced_mem_insts = 0.05;
  } else {
    per_step.coalesced_mem_insts = 0.002;  // payoff write-back only
  }
  k.mix = per_step.scaled(p.path_steps);
  k.mix.shared_accesses += 32.0;  // block-level payoff reduction
  k.mix.sync_insts += 6.0;

  if (p.state_in_global) {
    // Big per-thread register state forces low occupancy (one block/SM).
    k.resources.registers_per_thread = 60;
    k.resources.shared_mem_per_block = 10 * 1024;
  } else {
    k.resources.registers_per_thread = 30;
    k.resources.shared_mem_per_block = 2 * 1024;
  }
  k.h2d_bytes = common::Bytes::from_kib(4.0);   // pricing parameters
  k.d2h_bytes = common::Bytes::from_bytes(
      static_cast<double>(p.num_blocks) * 16.0);  // per-block partial sums
  return k;
}

cpusim::CpuTask montecarlo_cpu_task(const MonteCarloParams& p,
                                    int instance_id) {
  cpusim::CpuTask t;
  t.name = "montecarlo";
  t.instance_id = instance_id;
  // Profile: ~70 cycles per path step per lane on the E5520 (Box-Muller
  // dominates); total work scales with the whole grid's steps.
  const double lanes =
      static_cast<double>(p.num_blocks) * p.threads_per_block;
  const double cycles = 70.0 * p.path_steps * lanes;
  t.core_seconds = cycles / 2.27e9;
  t.threads = 8;
  t.cache_sensitivity = 0.15;
  return t;
}

}  // namespace ewc::workloads
