// AES-128 encryption workload (paper ref [26]: "Implementing AES on GPU").
//
// The enterprise scenario: many users submit small (6-12 KB) buffers for
// encryption. A functional AES-128 implementation (FIPS-197, ECB mode) keeps
// the workload real and testable; the GPU kernel descriptor charges the
// instruction mix of a T-table GPU implementation, which is dominated by
// table lookups (constant cache + uncoalesced gathers) — this is why the
// paper's encryption kernel is memory-bound and benefits so strongly from
// consolidation onto idle SMs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cpusim/task.hpp"
#include "gpusim/kernel_desc.hpp"

namespace ewc::workloads {

using AesKey = std::array<std::uint8_t, 16>;
using AesBlock = std::array<std::uint8_t, 16>;

/// Expanded AES-128 key schedule: 11 round keys.
struct AesKeySchedule {
  std::array<std::array<std::uint8_t, 16>, 11> round_keys;
};

AesKeySchedule aes128_expand_key(const AesKey& key);

/// Encrypt / decrypt one 16-byte block in place.
void aes128_encrypt_block(const AesKeySchedule& ks, AesBlock& block);
void aes128_decrypt_block(const AesKeySchedule& ks, AesBlock& block);

/// ECB over a whole buffer; the size must be a multiple of 16.
/// @throws std::invalid_argument otherwise.
std::vector<std::uint8_t> aes128_encrypt_ecb(std::span<const std::uint8_t> data,
                                             const AesKey& key);
std::vector<std::uint8_t> aes128_decrypt_ecb(std::span<const std::uint8_t> data,
                                             const AesKey& key);

/// Parameters of one encryption request instance.
struct AesParams {
  std::size_t input_bytes = 12 * 1024;  ///< paper: 12 KB or 6 KB
  int threads_per_block = 256;          ///< paper: 256 (12 KB) / 128 (6 KB)
  /// Back-to-back encryptions of the buffer per request (enterprise requests
  /// batch many small messages; scales kernel work without changing shape).
  double iterations = 1.0;
  /// Multi-iteration variant (the paper's Scenario 1 / Tables 7-8 instances
  /// with 1e5 iterations): each pass re-streams the whole buffer through
  /// coalesced loads/stores, so the kernel becomes a DRAM-bandwidth-bound
  /// streamer instead of a constant-cache-latency-bound lookup kernel.
  bool streaming = false;
};

/// GPU kernel descriptor: one thread encrypts one 16-byte AES block; a
/// thread block covers threads_per_block * 16 input bytes (12 KB @ 256
/// threads -> 3 blocks, matching the paper's Table 1).
gpusim::KernelDesc aes_kernel_desc(const AesParams& p);

/// CPU-side profile of the same request (OpenMP-parallelized AES-NI-less
/// byte-sliced implementation on the Xeon E5520).
cpusim::CpuTask aes_cpu_task(const AesParams& p, int instance_id = 0);

}  // namespace ewc::workloads
