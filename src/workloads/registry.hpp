// Kernel registration and launch-argument ABI for the wcuda runtime.
//
// Applications launch workload kernels through the wcuda API by name, passing
// one of the POD argument blocks below via wcudaSetupArgument (mirroring how
// real CUDA marshals kernel arguments). The factories registered here turn
// (launch config, argument block) into the simulator descriptor.
#pragma once

#include <cstdint>

#include "cudart/registry.hpp"

namespace ewc::workloads {

// Argument blocks (the "kernel parameter" ABI). All fields are explicit-
// width PODs so marshalling through the byte buffer is well defined.
struct AesArgs {
  std::uint64_t input_bytes = 12 * 1024;
  double iterations = 1.0;
};
struct SortArgs {
  std::uint64_t num_elements = 6 * 1024;
  double iterations = 1.0;
};
struct SearchArgs {
  std::uint64_t corpus_bytes = 10 * 1024;
  std::uint64_t needle_bytes = 8;
  double iterations = 1.0;
};
struct BlackScholesArgs {
  std::uint64_t num_options = 4096 * 1024;
  double iterations = 1.0;
};
struct MonteCarloArgs {
  double path_steps = 500000.0;
  std::uint32_t state_in_global = 0;
};
struct KmeansArgs {
  std::uint64_t num_points = 16 * 1024;
  std::uint32_t dimensions = 16;
  std::uint32_t clusters = 8;
  std::uint32_t iterations = 20;
};
struct Sha256Args {
  std::uint64_t num_messages = 8 * 1024;
  std::uint64_t message_bytes = 512;
};
struct CompressionArgs {
  std::uint64_t input_bytes = 256 * 1024;
  std::uint64_t chunk_bytes = 16 * 1024;
};

/// Register the paper's five workload kernels ("aes_encrypt",
/// "bitonic_sort", "search", "blackscholes", "montecarlo") plus the
/// analytics/data-services extensions ("kmeans", "sha256", "compression")
/// with `registry`. Safe to call repeatedly (re-registration overwrites).
void register_paper_kernels(
    cudart::KernelRegistry& registry = cudart::KernelRegistry::global());

}  // namespace ewc::workloads
