// MonteCarlo workload (paper ref [28]: NVIDIA CUDA SDK sample).
//
// Monte-Carlo European option pricing over geometric-Brownian-motion paths.
// Two kernel variants appear in the paper with opposite resource behaviour:
//
//  * the compute-bound variant (Table 1 / Tables 7-8): many path steps per
//    sample, RNG + exp on the SFUs, almost no global traffic — the perfect
//    consolidation partner for memory-bound encryption (5E+15M gives the
//    paper's 19x/22x headline);
//  * the memory-bound variant (Scenario 1 / Table 2): few iterations but the
//    per-path state is re-streamed from global memory every step, so it
//    saturates DRAM and consolidating it with (also memory-bound)
//    encryption *loses* energy — the paper's cautionary example.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cpusim/task.hpp"
#include "gpusim/kernel_desc.hpp"

namespace ewc::workloads {

struct McResult {
  double price = 0.0;
  double std_error = 0.0;
};

/// Price a European call by Monte-Carlo GBM simulation (functional host
/// implementation; deterministic for a given seed).
McResult monte_carlo_call_price(double spot, double strike, double years,
                                double r, double sigma, std::size_t num_paths,
                                std::size_t steps_per_path,
                                std::uint64_t seed = 42);

struct MonteCarloParams {
  int num_blocks = 1;
  int threads_per_block = 128;  ///< paper Table 1: 128
  double path_steps = 500'000.0;  ///< paper Table 1: 500 K steps
  /// When true, per-path state spills to global memory every step
  /// (Scenario 1's memory-bound variant).
  bool state_in_global = false;
};

gpusim::KernelDesc montecarlo_kernel_desc(const MonteCarloParams& p);

cpusim::CpuTask montecarlo_cpu_task(const MonteCarloParams& p,
                                    int instance_id = 0);

}  // namespace ewc::workloads
