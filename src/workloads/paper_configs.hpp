// Per-experiment workload configurations (paper Sections III & VIII).
//
// Grid shapes (#blocks, #threads/block) and input sizes come straight from
// the paper. Because the original binaries and exact data are unavailable,
// per-request iteration counts are *calibrated*: the GPU instruction mixes
// keep their workload-characteristic shape (what is memory- vs compute- vs
// SFU-bound) and are uniformly scaled so that a single instance's predicted
// GPU time matches the paper's quoted measurement; CPU work is set so a
// single instance's CPU time matches the paper's quoted measurement. All
// multi-instance behaviour (consolidation wins/losses, contention,
// crossovers) then *emerges* from the simulators — nothing below fixes it.
#pragma once

#include <string>
#include <vector>

#include "cpusim/task.hpp"
#include "gpusim/kernel_desc.hpp"

namespace ewc::workloads {

/// One calibrated workload: the GPU descriptor and the CPU profile of a
/// single request instance.
struct InstanceSpec {
  std::string name;
  gpusim::KernelDesc gpu;
  cpusim::CpuTask cpu;
  double paper_gpu_seconds = 0.0;  ///< paper-quoted single-instance GPU time
  double paper_cpu_seconds = 0.0;  ///< paper-quoted single-instance CPU time
};

/// Scale `k`'s per-thread work so its predicted standalone total time (incl.
/// transfers) hits `target_seconds` on `dev` (3 fixed-point refinements).
gpusim::KernelDesc calibrate_gpu_seconds(gpusim::KernelDesc k,
                                         double target_seconds,
                                         const gpusim::DeviceConfig& dev);

/// CPU task whose single-instance runtime is exactly `seconds` at `threads`.
cpusim::CpuTask calibrate_cpu_seconds(const std::string& name, double seconds,
                                      int threads, double cache_sensitivity);

// ---- Table 1 / Figures 1, 7, 8 (homogeneous experiments) ----
InstanceSpec encryption_12k();     ///< AES 12 KB, 3 blk x 256 thr, speedup 0.84
InstanceSpec encryption_6k();      ///< AES 6 KB, 3 blk x 128 thr, speedup 0.15
InstanceSpec sorting_6k();         ///< sort 6 K, 6 blk x 256 thr, speedup 1.45
InstanceSpec search_10k();         ///< search 10 K, 10 blk x 256, speedup 0.48
InstanceSpec blackscholes_4096k(); ///< BS 4096 K, 1 blk x 256, speedup 1.68
InstanceSpec montecarlo_500k();    ///< MC 500 K steps, 1 blk x 128, speedup 7.0

// ---- Section III scenarios (Tables 2 & 3) ----
InstanceSpec scenario1_montecarlo();  ///< 45 blk, memory-bound variant, 62.4 s
InstanceSpec scenario1_encryption();  ///< 15 blk, 19.5 s
InstanceSpec scenario2_blackscholes();///< 45 blk, 26.4 s
InstanceSpec scenario2_search();      ///< 15 blk, 49.2 s

// ---- Section VIII heterogeneous experiments (Tables 5-8) ----
InstanceSpec t56_search();        ///< CPU 17 s, GPU 35.2 s
InstanceSpec t56_blackscholes();  ///< CPU 57.4 s, GPU 34.2 s
InstanceSpec t78_encryption();    ///< CPU 7.2 s, GPU 45.7 s
InstanceSpec t78_montecarlo();    ///< CPU 306 s, GPU 43.2 s

/// All Table 1 rows in paper order.
std::vector<InstanceSpec> table1_specs();

// ---- beyond-paper enterprise workloads (first-principles profiles, not
// calibrated to any paper measurement; paper_*_seconds report the resulting
// single-instance times for reference) ----
InstanceSpec kmeans_256k();      ///< analytics: 256 K points, 16-dim, k=8
InstanceSpec sha256_64k();       ///< integrity: 64 K x 4 KB messages
InstanceSpec compression_64m();  ///< ingest: 64 MB RLE job

/// The full enterprise catalogue: paper workloads + extensions, keyed by
/// spec name (used by the CLI, the datacenter example and queue benches).
std::vector<InstanceSpec> enterprise_specs();

// ---- helpers ----
std::vector<gpusim::KernelInstance> gpu_instances(const InstanceSpec& spec,
                                                  int count, int first_id = 0);
std::vector<cpusim::CpuTask> cpu_tasks(const InstanceSpec& spec, int count,
                                       int first_id = 0);

}  // namespace ewc::workloads
