#include "workloads/search.hpp"

namespace ewc::workloads {

std::size_t count_matches(std::string_view haystack, std::string_view needle) {
  if (needle.empty() || haystack.size() < needle.size()) return 0;
  std::size_t count = 0;
  for (std::size_t pos = 0;
       (pos = haystack.find(needle, pos)) != std::string_view::npos; ++pos) {
    ++count;
  }
  return count;
}

gpusim::KernelDesc search_kernel_desc(const SearchParams& p) {
  gpusim::KernelDesc k;
  k.name = "search";
  k.threads_per_block = p.threads_per_block;
  const std::size_t bytes_per_block =
      static_cast<std::size_t>(p.threads_per_block) * 4;
  k.num_blocks = static_cast<int>((p.corpus_bytes + bytes_per_block - 1) /
                                  bytes_per_block);

  // Per thread, per pass: stream the window (coalesced), compare against the
  // needle held in shared memory, tally with integer ops.
  const double needle = static_cast<double>(p.needle_bytes);
  gpusim::InstructionMix per_pass;
  per_pass.coalesced_mem_insts = 3.0 + needle * 0.5;
  per_pass.int_insts = 10.0 + needle * 4.0;
  per_pass.shared_accesses = needle;
  per_pass.sync_insts = 0.02;
  k.mix = per_pass.scaled(p.iterations);

  k.resources.registers_per_thread = 12;
  k.resources.shared_mem_per_block = 256;
  k.h2d_bytes =
      common::Bytes::from_bytes(static_cast<double>(p.corpus_bytes));
  k.d2h_bytes = common::Bytes::from_bytes(
      static_cast<double>(k.num_blocks) * 8.0);  // match counters
  return k;
}

cpusim::CpuTask search_cpu_task(const SearchParams& p, int instance_id) {
  cpusim::CpuTask t;
  t.name = "search";
  t.instance_id = instance_id;
  // Profile: SSE-optimized scan, ~1.5 cycles/byte plus per-candidate checks.
  const double cycles =
      1.5 * static_cast<double>(p.corpus_bytes) * p.iterations;
  t.core_seconds = cycles / 2.27e9;
  t.threads = 8;
  t.cache_sensitivity = 0.7;  // streaming: thrashes the shared cache
  return t;
}

}  // namespace ewc::workloads
