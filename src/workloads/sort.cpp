#include "workloads/sort.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace ewc::workloads {

void bitonic_sort(std::vector<std::uint32_t>& data) {
  if (data.size() < 2) return;
  const std::size_t n = std::bit_ceil(data.size());
  const std::size_t orig = data.size();
  data.resize(n, std::numeric_limits<std::uint32_t>::max());

  for (std::size_t k = 2; k <= n; k <<= 1) {
    for (std::size_t j = k >> 1; j > 0; j >>= 1) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t partner = i ^ j;
        if (partner > i) {
          const bool ascending = (i & k) == 0;
          if ((data[i] > data[partner]) == ascending) {
            std::swap(data[i], data[partner]);
          }
        }
      }
    }
  }
  data.resize(orig);
}

std::vector<std::uint32_t> bitonic_sorted(std::span<const std::uint32_t> data) {
  std::vector<std::uint32_t> copy(data.begin(), data.end());
  bitonic_sort(copy);
  return copy;
}

gpusim::KernelDesc sort_kernel_desc(const SortParams& p) {
  gpusim::KernelDesc k;
  k.name = "bitonic_sort";
  k.threads_per_block = p.threads_per_block;
  // Each block owns a tile of 4 elements per thread.
  const std::size_t tile = static_cast<std::size_t>(p.threads_per_block) * 4;
  k.num_blocks = static_cast<int>((p.num_elements + tile - 1) / tile);

  // Per thread, per sort: log^2(n) compare-exchange stages; in-tile stages
  // hit shared memory, cross-tile stages stream coalesced global memory.
  const double n = static_cast<double>(p.num_elements);
  const double log_n = std::log2(std::max(4.0, n));
  const double stages = log_n * (log_n + 1.0) / 2.0;
  // Bitonic sort on small tiles is barrier-dominated: every compare-exchange
  // stage ends in __syncthreads and the warps spend most cycles waiting at
  // the rendezvous, not issuing — which is why packing more sort instances
  // per SM is nearly free (the paper's flat manual-consolidation curve).
  gpusim::InstructionMix per_sort;
  per_sort.int_insts = stages * 2.0;
  per_sort.shared_accesses = stages * 6.0;
  per_sort.sync_insts = stages * 5.0;
  per_sort.coalesced_mem_insts = log_n * 2.5;  // cross-tile merge passes
  k.mix = per_sort.scaled(p.iterations);

  k.resources.registers_per_thread = 14;
  k.resources.shared_mem_per_block = 4 * 1024;  // the tile
  k.h2d_bytes =
      common::Bytes::from_bytes(static_cast<double>(p.num_elements) * 4.0);
  k.d2h_bytes = k.h2d_bytes;
  return k;
}

cpusim::CpuTask sort_cpu_task(const SortParams& p, int instance_id) {
  cpusim::CpuTask t;
  t.name = "bitonic_sort";
  t.instance_id = instance_id;
  // Profile: parallel std::sort-quality merge sort, ~11 cycles per element
  // per log2(n) level on the E5520.
  const double n = static_cast<double>(p.num_elements);
  const double cycles = 11.0 * n * std::log2(std::max(4.0, n));
  t.core_seconds = cycles * p.iterations / 2.27e9;
  t.threads = 8;
  t.cache_sensitivity = 0.6;
  return t;
}

}  // namespace ewc::workloads
