#include "workloads/aes.hpp"

#include <cstring>
#include <stdexcept>

namespace ewc::workloads {

namespace {

// FIPS-197 S-box and its inverse.
constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

std::uint8_t inv_sbox_at(std::uint8_t v) {
  // Computed lazily from kSbox; AES S-box is a bijection.
  static const auto table = [] {
    std::array<std::uint8_t, 256> t{};
    for (int i = 0; i < 256; ++i) t[kSbox[i]] = static_cast<std::uint8_t>(i);
    return t;
  }();
  return table[v];
}

std::uint8_t xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

void sub_bytes(AesBlock& s) {
  for (auto& b : s) b = kSbox[b];
}
void inv_sub_bytes(AesBlock& s) {
  for (auto& b : s) b = inv_sbox_at(b);
}

// State is column-major: s[r + 4c].
void shift_rows(AesBlock& s) {
  AesBlock t = s;
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[static_cast<std::size_t>(r + 4 * c)] =
          t[static_cast<std::size_t>(r + 4 * ((c + r) % 4))];
    }
  }
}
void inv_shift_rows(AesBlock& s) {
  AesBlock t = s;
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[static_cast<std::size_t>(r + 4 * ((c + r) % 4))] =
          t[static_cast<std::size_t>(r + 4 * c)];
    }
  }
}

void mix_columns(AesBlock& s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s.data() + 4 * c;
    std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
    col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
  }
}
void inv_mix_columns(AesBlock& s) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s.data() + 4 * c;
    std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                       gmul(a2, 13) ^ gmul(a3, 9));
    col[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                       gmul(a2, 11) ^ gmul(a3, 13));
    col[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                       gmul(a2, 14) ^ gmul(a3, 11));
    col[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                       gmul(a2, 9) ^ gmul(a3, 14));
  }
}

void add_round_key(AesBlock& s, const std::array<std::uint8_t, 16>& rk) {
  for (int i = 0; i < 16; ++i) s[static_cast<std::size_t>(i)] ^= rk[static_cast<std::size_t>(i)];
}

}  // namespace

AesKeySchedule aes128_expand_key(const AesKey& key) {
  AesKeySchedule ks;
  std::array<std::uint8_t, 176> w{};
  std::memcpy(w.data(), key.data(), 16);
  for (int i = 16; i < 176; i += 4) {
    std::uint8_t t[4] = {w[static_cast<std::size_t>(i - 4)], w[static_cast<std::size_t>(i - 3)],
                         w[static_cast<std::size_t>(i - 2)], w[static_cast<std::size_t>(i - 1)]};
    if (i % 16 == 0) {
      std::uint8_t tmp = t[0];
      t[0] = static_cast<std::uint8_t>(kSbox[t[1]] ^ kRcon[i / 16]);
      t[1] = kSbox[t[2]];
      t[2] = kSbox[t[3]];
      t[3] = kSbox[tmp];
    }
    for (int j = 0; j < 4; ++j) {
      w[static_cast<std::size_t>(i + j)] =
          static_cast<std::uint8_t>(w[static_cast<std::size_t>(i + j - 16)] ^ t[j]);
    }
  }
  for (int r = 0; r < 11; ++r) {
    std::memcpy(ks.round_keys[static_cast<std::size_t>(r)].data(), w.data() + 16 * r, 16);
  }
  return ks;
}

void aes128_encrypt_block(const AesKeySchedule& ks, AesBlock& block) {
  add_round_key(block, ks.round_keys[0]);
  for (int round = 1; round < 10; ++round) {
    sub_bytes(block);
    shift_rows(block);
    mix_columns(block);
    add_round_key(block, ks.round_keys[static_cast<std::size_t>(round)]);
  }
  sub_bytes(block);
  shift_rows(block);
  add_round_key(block, ks.round_keys[10]);
}

void aes128_decrypt_block(const AesKeySchedule& ks, AesBlock& block) {
  add_round_key(block, ks.round_keys[10]);
  inv_shift_rows(block);
  inv_sub_bytes(block);
  for (int round = 9; round >= 1; --round) {
    add_round_key(block, ks.round_keys[static_cast<std::size_t>(round)]);
    inv_mix_columns(block);
    inv_shift_rows(block);
    inv_sub_bytes(block);
  }
  add_round_key(block, ks.round_keys[0]);
}

namespace {
std::vector<std::uint8_t> aes_ecb(std::span<const std::uint8_t> data,
                                  const AesKey& key, bool encrypt) {
  if (data.size() % 16 != 0) {
    throw std::invalid_argument("aes128 ECB: size must be a multiple of 16");
  }
  const AesKeySchedule ks = aes128_expand_key(key);
  std::vector<std::uint8_t> out(data.size());
  for (std::size_t off = 0; off < data.size(); off += 16) {
    AesBlock block;
    std::memcpy(block.data(), data.data() + off, 16);
    if (encrypt) {
      aes128_encrypt_block(ks, block);
    } else {
      aes128_decrypt_block(ks, block);
    }
    std::memcpy(out.data() + off, block.data(), 16);
  }
  return out;
}
}  // namespace

std::vector<std::uint8_t> aes128_encrypt_ecb(std::span<const std::uint8_t> data,
                                             const AesKey& key) {
  return aes_ecb(data, key, true);
}

std::vector<std::uint8_t> aes128_decrypt_ecb(std::span<const std::uint8_t> data,
                                             const AesKey& key) {
  return aes_ecb(data, key, false);
}

gpusim::KernelDesc aes_kernel_desc(const AesParams& p) {
  gpusim::KernelDesc k;
  k.name = "aes_encrypt";
  k.threads_per_block = p.threads_per_block;
  const std::size_t bytes_per_block =
      static_cast<std::size_t>(p.threads_per_block) * 16;
  k.num_blocks = static_cast<int>((p.input_bytes + bytes_per_block - 1) /
                                  bytes_per_block);

  // Per 16-byte AES block (one thread, one iteration), T-table style:
  // 10 rounds x 16 table lookups from constant memory, with roughly one in
  // five lookups spilling to (uncoalesced) global memory on a GT200 because
  // the 8 KB constant working set thrashes, plus XOR/shift integer work.
  gpusim::InstructionMix per_iter;
  per_iter.int_insts = 420.0;
  per_iter.const_accesses = 160.0;
  per_iter.shared_accesses = 24.0;  // per-block key schedule
  per_iter.sync_insts = 0.05;
  if (p.streaming) {
    // Each pass re-streams plaintext+ciphertext coalesced; T-table lookups
    // stay warm in the constant cache across passes and the XOR pipeline
    // hides under the loads, leaving the kernel DRAM-bandwidth-bound.
    per_iter.int_insts = 100.0;
    per_iter.const_accesses = 40.0;
    per_iter.coalesced_mem_insts = 40.0;
    per_iter.uncoalesced_mem_insts = 1.0;
  } else {
    per_iter.uncoalesced_mem_insts = 6.0;  // cold T-table spills
    per_iter.coalesced_mem_insts = 2.0;    // plaintext load + ciphertext store
  }
  k.mix = per_iter.scaled(p.iterations);

  k.resources.registers_per_thread = 20;
  k.resources.shared_mem_per_block = 1 * 1024;
  k.resources.constant_data = common::Bytes::from_kib(8.0);  // T-tables

  k.h2d_bytes = common::Bytes::from_bytes(static_cast<double>(p.input_bytes));
  k.d2h_bytes = common::Bytes::from_bytes(static_cast<double>(p.input_bytes));
  return k;
}

cpusim::CpuTask aes_cpu_task(const AesParams& p, int instance_id) {
  cpusim::CpuTask t;
  t.name = "aes_encrypt";
  t.instance_id = instance_id;
  // Measured profile: an optimized byte-sliced AES on one E5520 core runs at
  // ~22 cycles/byte; OpenMP splits the buffer across threads.
  const double cycles_per_byte = 22.0;
  const double clock = 2.27e9;
  t.core_seconds = cycles_per_byte * static_cast<double>(p.input_bytes) *
                   p.iterations / clock;
  t.threads = 8;
  t.cache_sensitivity = 0.35;  // small working set, table-resident
  return t;
}

}  // namespace ewc::workloads
