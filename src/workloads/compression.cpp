#include "workloads/compression.hpp"

#include <stdexcept>

namespace ewc::workloads {

std::vector<std::uint8_t> rle_compress(std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out;
  out.reserve(data.size() / 2 + 16);
  std::size_t i = 0;
  while (i < data.size()) {
    // Measure the run starting at i.
    std::size_t run = 1;
    while (i + run < data.size() && data[i + run] == data[i] && run < 130) {
      ++run;
    }
    if (run >= 3) {
      out.push_back(static_cast<std::uint8_t>(128 + run - 3));  // 128..255
      out.push_back(data[i]);
      i += run;
      continue;
    }
    // Literal run: scan forward until a repeat of >= 3 starts (or cap 128).
    std::size_t lit = 0;
    while (i + lit < data.size() && lit < 128) {
      std::size_t ahead = 1;
      while (i + lit + ahead < data.size() &&
             data[i + lit + ahead] == data[i + lit] && ahead < 3) {
        ++ahead;
      }
      if (ahead >= 3) break;
      ++lit;
    }
    if (lit == 0) lit = 1;
    out.push_back(static_cast<std::uint8_t>(lit - 1));  // 0..127
    out.insert(out.end(), data.begin() + static_cast<long>(i),
               data.begin() + static_cast<long>(i + lit));
    i += lit;
  }
  return out;
}

std::vector<std::uint8_t> rle_decompress(std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out;
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint8_t control = data[i++];
    if (control < 128) {
      const std::size_t lit = static_cast<std::size_t>(control) + 1;
      if (i + lit > data.size()) {
        throw std::invalid_argument("rle_decompress: truncated literal run");
      }
      out.insert(out.end(), data.begin() + static_cast<long>(i),
                 data.begin() + static_cast<long>(i + lit));
      i += lit;
    } else {
      if (i >= data.size()) {
        throw std::invalid_argument("rle_decompress: truncated repeat run");
      }
      const std::size_t run = static_cast<std::size_t>(control) - 128 + 3;
      out.insert(out.end(), run, data[i++]);
    }
  }
  return out;
}

gpusim::KernelDesc compression_kernel_desc(const CompressionParams& p) {
  gpusim::KernelDesc k;
  k.name = "compression";
  k.threads_per_block = p.threads_per_block;
  k.num_blocks = static_cast<int>(
      (p.input_bytes + p.chunk_bytes - 1) / p.chunk_bytes);

  // Per thread: scan its slice byte-by-byte (divergent control flow, byte
  // loads), emit through a shared-memory staging buffer.
  const double bytes_per_thread =
      static_cast<double>(p.chunk_bytes) / p.threads_per_block;
  gpusim::InstructionMix mix;
  mix.int_insts = bytes_per_thread * 8.0;
  mix.uncoalesced_mem_insts = bytes_per_thread / 32.0;  // byte-granular
  mix.coalesced_mem_insts = bytes_per_thread / 128.0;   // staged output
  mix.shared_accesses = bytes_per_thread * 1.5;
  mix.sync_insts = 4.0;  // per-chunk offset reductions
  k.mix = mix;

  k.resources.registers_per_thread = 18;
  k.resources.shared_mem_per_block = 8 * 1024;
  k.h2d_bytes =
      common::Bytes::from_bytes(static_cast<double>(p.input_bytes));
  k.d2h_bytes =
      common::Bytes::from_bytes(static_cast<double>(p.input_bytes) * 0.6);
  return k;
}

cpusim::CpuTask compression_cpu_task(const CompressionParams& p,
                                     int instance_id) {
  cpusim::CpuTask t;
  t.name = "compression";
  t.instance_id = instance_id;
  // Profile: ~6 cycles/byte scalar RLE scan.
  t.core_seconds = 6.0 * static_cast<double>(p.input_bytes) / 2.27e9;
  t.threads = 8;
  t.cache_sensitivity = 0.65;  // streaming with byte-level access
  return t;
}

}  // namespace ewc::workloads
