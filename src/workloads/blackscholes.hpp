// BlackScholes workload (paper ref [28]: NVIDIA CUDA SDK sample).
//
// Prices European call/put options with the closed-form Black-Scholes
// formula — a compute-bound kernel (CND evaluation: exp/log/sqrt on the SFUs)
// with perfectly coalesced streaming of the option arrays. In Scenario 2 /
// Tables 5-6 it is the compute-bound partner that overlaps beautifully with
// memory-bound search under consolidation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cpusim/task.hpp"
#include "gpusim/kernel_desc.hpp"

namespace ewc::workloads {

struct OptionInput {
  double spot = 0.0;
  double strike = 0.0;
  double years = 0.0;
};

struct OptionPrice {
  double call = 0.0;
  double put = 0.0;
};

/// Closed-form Black-Scholes price (risk-free rate r, volatility sigma).
OptionPrice black_scholes(const OptionInput& opt, double r = 0.02,
                          double sigma = 0.30);

/// Vectorized pricing of a whole batch.
std::vector<OptionPrice> black_scholes_batch(std::span<const OptionInput> opts,
                                             double r = 0.02,
                                             double sigma = 0.30);

struct BlackScholesParams {
  std::size_t num_options = 4096 * 1024;  ///< paper Table 1: 4096 K options
  int num_blocks = 1;   ///< paper Table 1 uses 1 block; Scenario 2 uses 45
  int threads_per_block = 256;
  double iterations = 1.0;  ///< re-pricing rounds (paper Scenario 2: 1000)
};

gpusim::KernelDesc blackscholes_kernel_desc(const BlackScholesParams& p);

cpusim::CpuTask blackscholes_cpu_task(const BlackScholesParams& p,
                                      int instance_id = 0);

}  // namespace ewc::workloads
