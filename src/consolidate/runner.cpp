#include "consolidate/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "consolidate/frontend.hpp"
#include "cudart/runtime.hpp"

namespace ewc::consolidate {

namespace {

std::vector<gpusim::KernelInstance> all_instances(
    const std::vector<WorkloadMix>& mix) {
  std::vector<gpusim::KernelInstance> out;
  int id = 0;
  for (const auto& m : mix) {
    auto batch = workloads::gpu_instances(m.spec, m.count, id);
    id += m.count;
    out.insert(out.end(), batch.begin(), batch.end());
  }
  return out;
}

std::string padded_owner(const std::string& name, int idx) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "#%04d", idx);
  return name + buf;
}

}  // namespace

ExperimentRunner::ExperimentRunner(const gpusim::FluidEngine& engine,
                                   power::GpuPowerModel power_model,
                                   BackendOptions options)
    : engine_(engine), power_model_(std::move(power_model)), options_(options) {}

SetupResult ExperimentRunner::run_cpu(const std::vector<WorkloadMix>& mix) const {
  std::vector<cpusim::CpuTask> tasks;
  int id = 0;
  for (const auto& m : mix) {
    auto batch = workloads::cpu_tasks(m.spec, m.count, id);
    id += m.count;
    tasks.insert(tasks.end(), batch.begin(), batch.end());
  }
  cpusim::CpuEngine cpu(options_.cpu_config);
  const auto run = cpu.run(tasks);
  // Paper CPU baseline: GPU power-disconnected, so no GPU idle adder.
  return SetupResult{run.makespan, run.system_energy};
}

SetupResult ExperimentRunner::run_serial(
    const std::vector<WorkloadMix>& mix) const {
  const auto run = engine_.run_serial(all_instances(mix));
  return SetupResult{run.total_time, run.system_energy};
}

SetupResult ExperimentRunner::run_manual(
    const std::vector<WorkloadMix>& mix) const {
  gpusim::LaunchPlan plan;
  plan.instances = all_instances(mix);
  plan.reuse_constant_data = false;  // manual version lacks the optimization
  const auto run = engine_.run(plan);
  return SetupResult{run.total_time, run.system_energy};
}

SetupResult ExperimentRunner::run_dynamic(
    const std::vector<WorkloadMix>& mix, std::vector<BatchReport>* reports,
    std::map<std::string, CompletionReply>* completions) const {
  // Register one "precompiled" kernel per spec so the calibrated descriptor
  // flows through the real API path.
  cudart::KernelRegistry registry;
  int total = 0;
  for (const auto& m : mix) {
    const gpusim::KernelDesc desc = m.spec.gpu;
    registry.register_kernel(
        "spec:" + m.spec.name,
        [desc](const cudart::LaunchConfig&, std::span<const std::byte>) {
          return desc;
        });
    total += m.count;
  }
  if (total == 0) return SetupResult{};

  BackendOptions options = options_;
  options.batch_threshold = total;  // one batch covering the experiment

  // Templates must cover the descriptors' kernel names.
  TemplateRegistry templates = TemplateRegistry::paper_defaults();
  {
    ConsolidationTemplate t;
    t.name = "experiment_mix";
    for (const auto& m : mix) t.kernels.insert(m.spec.gpu.name);
    templates.add(std::move(t));
  }

  Backend backend(engine_, power_model_, std::move(templates), options);
  for (const auto& m : mix) {
    backend.set_cpu_profile(m.spec.gpu.name, m.spec.cpu);
  }

  cudart::Runtime runtime(engine_, &registry);

  // One "user process" per instance.
  std::vector<std::thread> apps;
  std::vector<cudart::wcudaError> status(static_cast<std::size_t>(total),
                                         cudart::wcudaError::kSuccess);
  std::mutex completions_mu;
  int idx = 0;
  for (const auto& m : mix) {
    for (int i = 0; i < m.count; ++i, ++idx) {
      const int slot = idx;
      const auto spec = m.spec;  // copy for the thread
      apps.emplace_back([&, spec, slot] {
        cudart::Context ctx(padded_owner(spec.name, slot), 512u << 20);
        Frontend frontend(backend, ctx.owner(), &registry);
        ctx.set_interceptor(&frontend);

        auto fail = [&](cudart::wcudaError e) { status[static_cast<std::size_t>(slot)] = e; };

        const std::size_t in_bytes = std::max<std::size_t>(
            16, static_cast<std::size_t>(spec.gpu.h2d_bytes.bytes()));
        const std::size_t out_bytes = std::max<std::size_t>(
            16, static_cast<std::size_t>(spec.gpu.d2h_bytes.bytes()));
        std::vector<std::uint8_t> input(in_bytes, 0xAB);
        std::vector<std::uint8_t> output(out_bytes, 0);

        void* dev = nullptr;
        auto e = runtime.wcudaMalloc(ctx, &dev, std::max(in_bytes, out_bytes));
        if (e != cudart::wcudaError::kSuccess) return fail(e);
        e = runtime.wcudaMemcpy(ctx, dev, input.data(), in_bytes,
                                cudart::MemcpyKind::kHostToDevice);
        if (e != cudart::wcudaError::kSuccess) return fail(e);
        e = runtime.wcudaConfigureCall(
            ctx, cudart::Dim3{static_cast<unsigned>(spec.gpu.num_blocks), 1, 1},
            cudart::Dim3{static_cast<unsigned>(spec.gpu.threads_per_block), 1, 1},
            0);
        if (e != cudart::wcudaError::kSuccess) return fail(e);
        const std::uint64_t token = static_cast<std::uint64_t>(slot);
        e = runtime.wcudaSetupArgument(ctx, &token, sizeof token, 0);
        if (e != cudart::wcudaError::kSuccess) return fail(e);
        e = runtime.wcudaLaunch(ctx, "spec:" + spec.name);
        if (e != cudart::wcudaError::kSuccess) return fail(e);
        e = runtime.wcudaMemcpy(ctx, output.data(), dev, out_bytes,
                                cudart::MemcpyKind::kDeviceToHost);
        if (e != cudart::wcudaError::kSuccess) return fail(e);
        runtime.wcudaFree(ctx, dev);
        if (completions) {
          std::lock_guard lock(completions_mu);
          (*completions)[ctx.owner()] = frontend.last_completion();
        }
      });
    }
  }
  for (auto& t : apps) t.join();
  backend.flush();

  for (auto e : status) {
    if (e != cudart::wcudaError::kSuccess) {
      backend.shutdown();
      throw std::runtime_error(std::string("dynamic run failed: ") +
                               cudart::error_name(e));
    }
  }

  SetupResult result{backend.total_time(), backend.total_energy()};
  if (reports) *reports = backend.reports();
  backend.shutdown();
  return result;
}

ComparisonResult ExperimentRunner::compare(
    const std::vector<WorkloadMix>& mix) const {
  ComparisonResult r;
  r.cpu = run_cpu(mix);
  r.serial_gpu = run_serial(mix);
  r.manual = run_manual(mix);
  r.dynamic_framework = run_dynamic(mix, &r.dynamic_reports);
  return r;
}

}  // namespace ewc::consolidate
