#include "consolidate/template_registry.hpp"

#include <algorithm>

namespace ewc::consolidate {

void TemplateRegistry::add(ConsolidationTemplate t) {
  templates_.push_back(std::move(t));
}

void TemplateRegistry::add_homogeneous(const std::string& kernel,
                                       int max_total_blocks) {
  ConsolidationTemplate t;
  t.name = kernel + "_homogeneous";
  t.kernels = {kernel};
  t.max_total_blocks = max_total_blocks;
  add(std::move(t));
}

const ConsolidationTemplate* TemplateRegistry::find(
    const std::vector<std::string>& kernel_names) const {
  const ConsolidationTemplate* best = nullptr;
  for (const auto& t : templates_) {
    bool covers = std::all_of(
        kernel_names.begin(), kernel_names.end(),
        [&](const std::string& k) { return t.kernels.count(k) != 0; });
    if (covers && (best == nullptr || t.kernels.size() < best->kernels.size())) {
      best = &t;
    }
  }
  return best;
}

TemplateRegistry TemplateRegistry::paper_defaults() {
  TemplateRegistry r;
  for (const char* k : {"aes_encrypt", "bitonic_sort", "search",
                        "blackscholes", "montecarlo", "montecarlo_gmem",
                        "kmeans", "sha256", "compression"}) {
    r.add_homogeneous(k);
  }
  {
    ConsolidationTemplate t;
    t.name = "encryption_montecarlo";
    t.kernels = {"aes_encrypt", "montecarlo", "montecarlo_gmem"};
    r.add(std::move(t));
  }
  {
    ConsolidationTemplate t;
    t.name = "search_blackscholes";
    t.kernels = {"search", "blackscholes"};
    r.add(std::move(t));
  }
  return r;
}

}  // namespace ewc::consolidate
