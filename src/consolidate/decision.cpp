#include "consolidate/decision.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "fault/injector.hpp"
#include "obs/histogram.hpp"
#include "obs/tracer.hpp"

namespace ewc::consolidate {

const char* alternative_name(Alternative a) {
  switch (a) {
    case Alternative::kConsolidatedGpu: return "consolidated-gpu";
    case Alternative::kIndividualGpu: return "individual-gpu";
    case Alternative::kCpu: return "cpu";
  }
  return "?";
}

const AlternativeEstimate& Decision::chosen_estimate() const {
  for (const auto& e : estimates) {
    if (e.which == chosen) return e;
  }
  throw std::logic_error("Decision: chosen alternative missing");
}

DecisionEngine::DecisionEngine(gpusim::DeviceConfig dev,
                               power::GpuPowerModel power_model,
                               cpusim::CpuConfig cpu_cfg, FrameworkCosts costs)
    : dev_(dev),
      perf_(dev),
      power_(std::move(power_model)),
      cpu_cfg_(cpu_cfg),
      costs_(costs) {}

void DecisionEngine::enable_prediction_cache(std::size_t capacity) {
  cache_ = std::make_unique<gpusim::SimCache<GpuPrediction>>(capacity);
  cache_key_prefix_ = gpusim::config_key_prefix(dev_);
}

void DecisionEngine::disable_prediction_cache() { cache_.reset(); }

gpusim::CacheStats DecisionEngine::prediction_cache_stats() const {
  return cache_ ? cache_->stats() : gpusim::CacheStats{};
}

DecisionEngine::GpuPrediction DecisionEngine::predict_gpu(
    const gpusim::LaunchPlan& plan, std::string_view tag,
    bool include_instance_ids) const {
  gpusim::PlanSignature sig;
  if (cache_) {
    sig = gpusim::plan_signature_with_prefix(plan, cache_key_prefix_, tag,
                                             include_instance_ids);
    if (auto hit = cache_->get(sig)) return *hit;
  }
  GpuPrediction p;
  const auto timing = perf_.predict(plan);
  const auto pw = power_.predict(dev_, plan, timing);
  p.time = timing.total_time;
  p.energy = pw.system_energy;
  p.type1 = timing.type == perf::ConsolidationType::kType1;
  if (cache_) cache_->put(sig, p);
  return p;
}

Duration DecisionEngine::overhead(
    const std::vector<gpusim::KernelInstance>& instances,
    const std::vector<std::size_t>& staged_bytes,
    const std::vector<int>& api_messages, const Optimizations& opts) const {
  if (instances.size() != staged_bytes.size() ||
      instances.size() != api_messages.size()) {
    throw std::invalid_argument("DecisionEngine::overhead: size mismatch");
  }
  const std::size_t n = instances.size();
  double secs = costs_.decision_eval.seconds();

  // Communication: with leader election, one frontend per homogeneous group
  // speaks for the group and the rest only register + ship data.
  std::map<std::string, int> seen;  // kernel name -> members so far
  for (std::size_t i = 0; i < n; ++i) {
    int messages = api_messages[i];
    if (opts.leader_election) {
      const int member = seen[instances[i].desc.name]++;
      if (member > 0) messages = std::min(messages, costs_.messages_follower);
    }
    secs += messages * costs_.ipc_round_trip.seconds();
  }

  // Staging: one shared pre-allocated buffer serializes the copies, and each
  // queued instance waits one extra round per predecessor. Without the
  // constant-data-reuse optimization, every instance additionally ships its
  // kernel's constant data (e.g. the AES T-tables) through the buffer.
  std::set<std::string> constants_uploaded;
  for (std::size_t i = 0; i < n; ++i) {
    double bytes = static_cast<double>(staged_bytes[i]);
    const double cbytes = instances[i].desc.resources.constant_data.bytes();
    if (cbytes > 0.0) {
      const bool first =
          constants_uploaded.insert(instances[i].desc.name).second;
      if (!opts.constant_data_reuse || first) {
        bytes += cbytes;
        secs += costs_.staging_fixed.seconds();  // extra upload round trip
      }
    }
    secs += costs_.staging_fixed.seconds() +
            bytes / costs_.staging_bandwidth.bytes_per_second();
    secs += static_cast<double>(i) * costs_.staging_round.seconds();
  }

  // Frontend synchronization barrier before the combined launch.
  secs += static_cast<double>(n) * costs_.barrier_per_frontend.seconds();
  return Duration::from_seconds(secs);
}

Decision DecisionEngine::decide(
    const gpusim::LaunchPlan& plan,
    const std::vector<std::optional<cpusim::CpuTask>>& cpu_profiles,
    Duration framework_overhead, DecisionPolicy policy) const {
  if (plan.instances.empty()) {
    throw std::invalid_argument("DecisionEngine::decide: empty plan");
  }
  if (cpu_profiles.size() != plan.instances.size()) {
    throw std::invalid_argument("DecisionEngine::decide: profile count mismatch");
  }

  // Scripted predictor misbehavior: a fail is an exception (the Backend's
  // degraded path catches it), a stall burns wall time against the
  // decision deadline.
  if (auto a = fault::hit("decision.decide")) {
    if (a.kind == fault::ActionKind::kFail) {
      throw fault::InjectedFault("injected decision failure");
    }
    if (a.kind == fault::ActionKind::kStall ||
        a.kind == fault::ActionKind::kDelay) {
      fault::sleep_for(a.duration);
    }
  }

  static obs::Histogram* decide_hist =
      obs::HistogramRegistry::instance().get("decision.decide_seconds");
  const double t0_us = obs::Tracer::now_us();
  obs::ScopedSpan span("decision.decide");

  Decision d;
  AlternativeEstimate ea, eb, ec;

  // (a) consolidated GPU.
  const auto eval_consolidated = [&] {
    ea.which = Alternative::kConsolidatedGpu;
    const auto p = predict_gpu(plan, "decide-consolidated",
                               /*include_instance_ids=*/false);
    ea.time = p.time + framework_overhead;
    // During the overhead window the node sits near idle (host-side copies).
    ea.energy = p.energy + power_.idle_power() * framework_overhead;
    ea.note = p.type1 ? "type-1" : "type-2";
  };

  // (b) individual (serial) GPU execution. Each instance is predicted alone,
  // so the memo entry for a kernel shape is shared across batch positions.
  const auto eval_individual = [&] {
    eb.which = Alternative::kIndividualGpu;
    Duration total = Duration::zero();
    Energy energy = Energy::zero();
    // One single-instance plan reused across the scan: the copy assignment
    // below recycles its string/vector capacity instead of re-allocating a
    // fresh plan per candidate.
    gpusim::LaunchPlan single;
    single.instances.resize(1);
    for (const auto& inst : plan.instances) {
      single.instances[0] = inst;
      const auto p = predict_gpu(single, "decide-single",
                                 /*include_instance_ids=*/false);
      total += p.time;
      energy += p.energy;
    }
    eb.time = total;
    eb.energy = energy;
  };

  // (c) CPU, from the provided profiles (paper: "we assume that CPU
  // performance and energy profiles are available").
  const auto eval_cpu = [&] {
    ec.which = Alternative::kCpu;
    std::vector<cpusim::CpuTask> tasks;
    tasks.reserve(cpu_profiles.size());
    bool have_all = true;
    for (const auto& p : cpu_profiles) {
      if (!p.has_value()) {
        have_all = false;
        break;
      }
      tasks.push_back(*p);
    }
    if (have_all) {
      cpusim::CpuEngine cpu(cpu_cfg_);
      const auto run = cpu.run(tasks);
      ec.time = run.makespan;
      ec.energy = run.system_energy;
    } else {
      ec.feasible = false;
      ec.note = "missing CPU profile";
    }
  };

  if (pool_ != nullptr) {
    // The GPU alternatives go to the pool; the CPU alternative runs here so
    // the calling thread contributes instead of blocking immediately.
    auto fa = pool_->submit(eval_consolidated);
    auto fb = pool_->submit(eval_individual);
    eval_cpu();
    fa.get();
    fb.get();
  } else {
    eval_consolidated();
    eval_individual();
    eval_cpu();
  }
  d.estimates.push_back(std::move(ea));
  d.estimates.push_back(std::move(eb));
  d.estimates.push_back(std::move(ec));

  switch (policy) {
    case DecisionPolicy::kAlwaysConsolidate:
      d.chosen = Alternative::kConsolidatedGpu;
      break;
    case DecisionPolicy::kNeverConsolidate:
      d.chosen = Alternative::kIndividualGpu;
      break;
    case DecisionPolicy::kModelBased: {
      const AlternativeEstimate* best = nullptr;
      for (const auto& e : d.estimates) {
        if (!e.feasible) continue;
        if (best == nullptr || e.energy < best->energy) best = &e;
      }
      d.chosen = best ? best->which : Alternative::kIndividualGpu;
      break;
    }
  }
  decide_hist->record((obs::Tracer::now_us() - t0_us) * 1e-6);
  if (span.active()) {
    span.set_args("\"instances\":" + std::to_string(plan.instances.size()) +
                  ",\"chosen\":\"" + alternative_name(d.chosen) + "\"");
  }
  return d;
}

}  // namespace ewc::consolidate
