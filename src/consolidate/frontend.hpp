// The consolidation frontend (paper Section IV).
//
// One Frontend per user process: a cudart::Interceptor installed on the
// process's Context that diverts the five CUDA entry points to the backend.
// Memory operations are conducted against the backend's context (the only
// real GPU context) with the data staged through the backend buffer; launch
// configuration and arguments are forwarded — immediately, or held until
// cudaLaunch when argument batching is on (the paper's optimization for
// reducing frontend/backend interactions). on_launch blocks until the
// backend's batch containing this kernel has executed.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "consolidate/backend.hpp"
#include "cudart/interceptor.hpp"
#include "cudart/registry.hpp"

namespace ewc::consolidate {

class Frontend : public cudart::Interceptor {
 public:
  Frontend(Backend& backend, std::string owner,
           const cudart::KernelRegistry* registry = nullptr);

  // cudart::Interceptor
  cudart::wcudaError on_malloc(void** dev_ptr, std::size_t bytes) override;
  cudart::wcudaError on_free(void* dev_ptr) override;
  cudart::wcudaError on_memcpy(void* dst, const void* src, std::size_t bytes,
                               cudart::MemcpyKind kind) override;
  cudart::wcudaError on_configure_call(cudart::Dim3 grid, cudart::Dim3 block,
                                       std::size_t shared_mem) override;
  cudart::wcudaError on_setup_argument(const void* arg, std::size_t size,
                                       std::size_t offset) override;
  cudart::wcudaError on_launch(const std::string& kernel_name) override;

  /// Result of the most recent (blocking) launch.
  const CompletionReply& last_completion() const { return last_reply_; }

  const std::string& owner() const { return owner_; }

 private:
  Backend& backend_;
  std::string owner_;
  const cudart::KernelRegistry* registry_;
  bool batching_;

  cudart::LaunchConfig config_;
  std::vector<std::byte> args_;
  int messages_since_launch_ = 0;
  std::size_t staged_since_launch_ = 0;
  std::shared_ptr<ReplyChannel> reply_ = std::make_shared<ReplyChannel>();
  CompletionReply last_reply_;
};

}  // namespace ewc::consolidate
