// The consolidation backend daemon (paper Section IV).
//
// A daemon launched before any workload: it owns the only real GPU context,
// listens for frontend connections, conducts every CUDA API call on their
// behalf (staging cross-context copies through its pre-allocated buffer),
// accumulates pending kernel launches, and — once enough work is queued —
// selects template-covered candidate sets, asks the decision engine whether
// consolidation is energy-beneficial, and executes the batch on the GPU
// (consolidated or individual) or on the CPU.
//
// Time accounting: the framework's own overheads (IPC, staging, barriers)
// are charged from the calibrated cost model; execution times and energies
// come from the simulators. Host threads are real; the clock is simulated.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/channel.hpp"
#include "consolidate/costs.hpp"
#include "consolidate/decision.hpp"
#include "consolidate/protocol.hpp"
#include "consolidate/template_registry.hpp"
#include "cpusim/engine.hpp"
#include "cudart/context.hpp"
#include "gpusim/engine.hpp"

namespace ewc::consolidate {

struct BackendOptions {
  FrameworkCosts costs;
  Optimizations optimizations;
  DecisionPolicy policy = DecisionPolicy::kModelBased;
  /// Process a batch when this many launches are pending (the paper uses
  /// 10 x the number of GPUs); flush() forces earlier processing.
  int batch_threshold = 10;
  cpusim::CpuConfig cpu_config;
  /// Wall-clock budget for one DecisionEngine::decide call, enforced as a
  /// bounded wait: decide() runs on a dedicated decision thread and the
  /// batch loop waits at most this long before degrading the group to the
  /// serial individual-GPU plan, so even a hung predictor cannot wedge a
  /// batch (or the clients queued behind it). An overrunning decide keeps
  /// the decision thread busy — its late result is discarded unread, and a
  /// following group whose decide cannot start in time degrades the same
  /// way. shutdown() still joins the decision thread, so it waits out an
  /// in-flight decide (injected stalls are finite). zero() = unlimited,
  /// decide() runs inline on the batch thread.
  common::Duration decision_deadline = common::Duration::zero();
};

/// What happened to one processed candidate group. A batch of pending
/// kernels is PARTITIONED by template coverage (paper Section VII: the
/// backend "chooses workload candidates according to the available
/// consolidation templates" and lets uncovered kernels "run normally"), so
/// one flush can yield several reports.
struct BatchReport {
  int num_instances = 0;
  std::vector<std::string> kernel_names;
  std::optional<Decision> decision;  ///< absent when no template matched
  Alternative executed = Alternative::kIndividualGpu;
  bool template_found = false;
  std::string template_name;  ///< empty when none matched
  int consolidated_launches = 0;  ///< >1 when split by template capacity
  common::Duration overhead = common::Duration::zero();
  common::Duration execution_time = common::Duration::zero();
  common::Duration total_time = common::Duration::zero();
  common::Energy energy = common::Energy::zero();
  /// The decision engine faulted or blew its deadline and the group fell
  /// back to serial individual-GPU execution (`decision` stays absent).
  bool degraded = false;
  std::string degraded_reason;
};

class Backend {
 public:
  Backend(const gpusim::FluidEngine& engine, power::GpuPowerModel power_model,
          TemplateRegistry templates, BackendOptions options);
  ~Backend();

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  // ---- frontend-facing ----
  common::Channel<BackendMessage>& channel() { return channel_; }
  /// The backend's device context; every frontend allocation lives here.
  /// Lock context_mutex() around any access.
  cudart::Context& device_context() { return context_; }
  std::mutex& context_mutex() { return context_mutex_; }
  const BackendOptions& options() const { return options_; }

  /// Register the CPU profile of one request instance of `kernel_name`
  /// (paper: CPU performance/energy profiles are assumed available).
  void set_cpu_profile(const std::string& kernel_name, cpusim::CpuTask task);

  // ---- main-thread control ----
  /// Process everything pending now; blocks until done.
  void flush();
  void shutdown();

  // ---- results ----
  std::vector<BatchReport> reports() const;
  common::Duration total_time() const;
  common::Energy total_energy() const;

 private:
  /// Outcome of one DecisionEngine::decide call on the decision thread.
  struct DecideOutcome {
    bool ok = false;
    Decision decision;
    std::string error;  ///< what decide() threw, when !ok
  };
  /// One decide call shipped to the decision thread. Inputs are copies:
  /// the batch thread may abandon the job at the deadline and move on while
  /// the decision thread is still reading them.
  struct DecideJob {
    gpusim::LaunchPlan plan;
    std::vector<std::optional<cpusim::CpuTask>> profiles;
    common::Duration overhead = common::Duration::zero();
    DecisionPolicy policy = DecisionPolicy::kModelBased;
    std::shared_ptr<common::Channel<DecideOutcome>> done;
  };

  void run_loop();
  void decision_loop();
  /// Run decide() under the configured deadline (bounded wait on the
  /// decision thread, or inline when no deadline is set). nullopt + reason
  /// when the group must degrade.
  std::optional<Decision> bounded_decide(
      const gpusim::LaunchPlan& plan,
      const std::vector<std::optional<cpusim::CpuTask>>& profiles,
      common::Duration overhead, std::string* degraded_reason);
  /// Answer every request's reply channel with an error (requests that will
  /// never execute, e.g. when the channel closes under a non-empty batch).
  static void fail_pending(std::vector<LaunchRequest>& pending,
                           const std::string& error);
  void process_batch(std::vector<LaunchRequest>& batch);
  /// Execute one template-covered candidate group (or an uncovered rest).
  void process_group(std::vector<LaunchRequest>& group,
                     const ConsolidationTemplate* tmpl);

  const gpusim::FluidEngine& engine_;
  DecisionEngine decision_;
  TemplateRegistry templates_;
  BackendOptions options_;

  common::Channel<BackendMessage> channel_;
  cudart::Context context_;
  std::mutex context_mutex_;

  mutable std::mutex state_mutex_;
  std::map<std::string, cpusim::CpuTask> cpu_profiles_;
  std::vector<BatchReport> reports_;
  common::Duration total_time_ = common::Duration::zero();
  common::Energy total_energy_ = common::Energy::zero();
  int next_instance_id_ = 0;

  std::thread worker_;
  /// Decision thread (started only when decision_deadline > 0): serializes
  /// decide() calls off the batch thread so their wait can be bounded.
  common::Channel<DecideJob> decide_jobs_;
  std::thread decision_worker_;
};

}  // namespace ewc::consolidate
