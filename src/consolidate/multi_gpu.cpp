#include "consolidate/multi_gpu.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace ewc::consolidate {

MultiGpuScheduler::MultiGpuScheduler(const gpusim::FluidEngine& engine,
                                     int num_gpus)
    : engine_(engine), model_(engine.device()), num_gpus_(num_gpus) {
  if (num_gpus < 1) {
    throw std::invalid_argument("MultiGpuScheduler: num_gpus must be >= 1");
  }
}

std::vector<std::vector<gpusim::KernelInstance>> MultiGpuScheduler::partition(
    const std::vector<gpusim::KernelInstance>& instances) const {
  // Longest-processing-time-first over the analytic predictions: classic
  // 4/3-approximate makespan scheduling, stable for our deterministic runs.
  std::vector<std::pair<double, std::size_t>> weighted;
  weighted.reserve(instances.size());
  for (std::size_t i = 0; i < instances.size(); ++i) {
    weighted.emplace_back(
        model_.analytic().predict(instances[i].desc).total_time.seconds(), i);
  }
  std::sort(weighted.begin(), weighted.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;  // deterministic tie break
  });

  std::vector<std::vector<gpusim::KernelInstance>> out(
      static_cast<std::size_t>(num_gpus_));
  std::vector<double> load(static_cast<std::size_t>(num_gpus_), 0.0);
  for (const auto& [t, idx] : weighted) {
    const std::size_t g = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    load[g] += t;
    out[g].push_back(instances[idx]);
  }
  return out;
}

FarmResult MultiGpuScheduler::run(
    const std::vector<gpusim::KernelInstance>& instances,
    bool reuse_constant_data) const {
  FarmResult result;
  result.per_gpu_time.resize(static_cast<std::size_t>(num_gpus_),
                             Duration::zero());
  result.per_gpu_instances.resize(static_cast<std::size_t>(num_gpus_), 0);
  if (instances.empty()) return result;

  const auto& energy_cfg = engine_.energy_config();
  const double idle_with_gpu = energy_cfg.system_idle_with_gpu.watts();
  const double host_only = energy_cfg.host_only_idle.watts();
  const double gpu_idle_delta = idle_with_gpu - host_only;

  const auto parts = partition(instances);
  double makespan = 0.0;
  double active_extra_joules = 0.0;  // above-idle energy of each GPU's run
  for (std::size_t g = 0; g < parts.size(); ++g) {
    if (parts[g].empty()) continue;
    gpusim::LaunchPlan plan;
    plan.instances = parts[g];
    plan.reuse_constant_data = reuse_constant_data;
    const auto run = engine_.run(plan);
    result.per_gpu_time[g] = run.total_time;
    result.per_gpu_instances[g] = static_cast<int>(parts[g].size());
    makespan = std::max(makespan, run.total_time.seconds());
    active_extra_joules +=
        run.system_energy.joules() - idle_with_gpu * run.total_time.seconds();
  }

  // Host counted once; every GPU idles for the full farm makespan (its own
  // activity is the above-idle extra accumulated per run).
  const double idle_joules =
      (host_only + gpu_idle_delta * num_gpus_) * makespan;
  result.makespan = Duration::from_seconds(makespan);
  result.energy = Energy::from_joules(idle_joules + active_extra_joules);
  return result;
}

}  // namespace ewc::consolidate
