// Trace-driven batching/queueing simulation (paper Section VII).
//
// The backend "keeps track of the number of workloads that issue GPU
// kernels" and consolidates once the count reaches a threshold (10 x the
// number of GPUs), which the paper says "can be adjusted based on further
// observation". This module performs that observation: it replays a request
// trace in simulated time against a single GPU whose batches form when the
// threshold is reached (or a timeout expires, or the trace drains), runs
// each batch through the decision engine, and reports the *request latency*
// distribution alongside energy — the throughput/latency trade-off the
// threshold knob controls.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "consolidate/decision.hpp"
#include "gpusim/engine.hpp"
#include "gpusim/sim_cache.hpp"
#include "trace/trace.hpp"
#include "workloads/paper_configs.hpp"

namespace ewc::consolidate {

struct QueueSimOptions {
  int batch_threshold = 10;
  /// A batch older than this executes even if under-filled (bounds latency).
  common::Duration batch_timeout = common::Duration::from_seconds(30.0);
  DecisionPolicy policy = DecisionPolicy::kModelBased;
  FrameworkCosts costs;
  Optimizations optimizations;
  cpusim::CpuConfig cpu_config;
  /// Memoize FluidEngine runs (and the decision engine's predictions) per
  /// batch shape. Hits are bit-identical to fresh simulations, so this only
  /// changes wall-clock time, never results.
  bool enable_sim_cache = true;
  std::size_t sim_cache_capacity = 1024;
  /// Optional pool for evaluating the decision alternatives concurrently;
  /// nullptr keeps everything on the calling thread.
  common::ThreadPool* pool = nullptr;
};

struct RequestOutcome {
  int user_id = 0;
  std::string workload;
  double arrival_seconds = 0.0;
  double finish_seconds = 0.0;
  double latency_seconds() const { return finish_seconds - arrival_seconds; }
};

struct QueueSimResult {
  std::vector<RequestOutcome> outcomes;
  common::Duration makespan = common::Duration::zero();
  common::Energy energy = common::Energy::zero();  ///< busy + idle gaps
  int batches = 0;
  double mean_latency_seconds = 0.0;
  double p95_latency_seconds = 0.0;
  /// FluidEngine run memoization over this replay (zeros when disabled).
  gpusim::CacheStats run_cache_stats;
  /// Decision-engine prediction memoization (zeros when disabled).
  gpusim::CacheStats predict_cache_stats;
};

class QueueSimulator {
 public:
  /// @param catalogue  workload-name -> calibrated spec for every workload
  ///                   that may appear in a trace.
  QueueSimulator(const gpusim::FluidEngine& engine,
                 power::GpuPowerModel power_model,
                 std::map<std::string, workloads::InstanceSpec> catalogue,
                 QueueSimOptions options = {});

  /// Replay `requests` (must be sorted by arrival time).
  /// @throws std::out_of_range for workloads missing from the catalogue;
  ///         std::invalid_argument for an unsorted trace.
  QueueSimResult run(const std::vector<trace::Request>& requests) const;

 private:
  const gpusim::FluidEngine& engine_;
  DecisionEngine decision_;
  std::map<std::string, workloads::InstanceSpec> catalogue_;
  QueueSimOptions options_;
  // const run() populates the cache; SimCache synchronizes internally.
  mutable std::unique_ptr<gpusim::RunResultCache> run_cache_;
  std::string run_key_prefix_;  ///< device+energy portion, encoded once
};

}  // namespace ewc::consolidate
