#include "consolidate/frontend.hpp"

#include <cstring>

namespace ewc::consolidate {

using cudart::MemcpyKind;
using cudart::wcudaError;

Frontend::Frontend(Backend& backend, std::string owner,
                   const cudart::KernelRegistry* registry)
    : backend_(backend),
      owner_(std::move(owner)),
      registry_(registry ? registry : &cudart::KernelRegistry::global()),
      batching_(backend.options().optimizations.argument_batching) {}

wcudaError Frontend::on_malloc(void** dev_ptr, std::size_t bytes) {
  std::lock_guard lock(backend_.context_mutex());
  messages_since_launch_ += 1;
  return backend_.device_context().allocate(bytes, dev_ptr);
}

wcudaError Frontend::on_free(void* dev_ptr) {
  std::lock_guard lock(backend_.context_mutex());
  messages_since_launch_ += 1;
  return backend_.device_context().release(dev_ptr);
}

wcudaError Frontend::on_memcpy(void* dst, const void* src, std::size_t bytes,
                               MemcpyKind kind) {
  std::lock_guard lock(backend_.context_mutex());
  auto& ctx = backend_.device_context();
  switch (kind) {
    case MemcpyKind::kHostToDevice: {
      // The backend stages the frontend's data through its pre-allocated
      // buffer and copies it into device memory (two copies; the cost model
      // charges them per batch).
      cudart::Allocation* alloc = ctx.find(dst);
      if (alloc == nullptr) return wcudaError::kInvalidDevicePointer;
      if (bytes > alloc->data.size()) return wcudaError::kInvalidValue;
      std::memcpy(alloc->data.data(), src, bytes);
      staged_since_launch_ += bytes;
      messages_since_launch_ += 1;
      return wcudaError::kSuccess;
    }
    case MemcpyKind::kDeviceToHost: {
      cudart::Allocation* alloc = ctx.find(const_cast<void*>(src));
      if (alloc == nullptr) return wcudaError::kInvalidDevicePointer;
      if (bytes > alloc->data.size()) return wcudaError::kInvalidValue;
      std::memcpy(dst, alloc->data.data(), bytes);
      return wcudaError::kSuccess;
    }
    case MemcpyKind::kDeviceToDevice: {
      cudart::Allocation* d = ctx.find(dst);
      cudart::Allocation* s = ctx.find(const_cast<void*>(src));
      if (d == nullptr || s == nullptr) {
        return wcudaError::kInvalidDevicePointer;
      }
      if (bytes > d->data.size() || bytes > s->data.size()) {
        return wcudaError::kInvalidValue;
      }
      std::memcpy(d->data.data(), s->data.data(), bytes);
      return wcudaError::kSuccess;
    }
  }
  return wcudaError::kInvalidValue;
}

wcudaError Frontend::on_configure_call(cudart::Dim3 grid, cudart::Dim3 block,
                                       std::size_t shared_mem) {
  config_ = cudart::LaunchConfig{grid, block, shared_mem, /*valid=*/true};
  args_.clear();
  if (!batching_) messages_since_launch_ += 1;
  return wcudaError::kSuccess;
}

wcudaError Frontend::on_setup_argument(const void* arg, std::size_t size,
                                       std::size_t offset) {
  if (!config_.valid) return wcudaError::kInvalidConfiguration;
  if (arg == nullptr || size == 0) return wcudaError::kInvalidValue;
  if (args_.size() < offset + size) args_.resize(offset + size);
  std::memcpy(args_.data() + offset, arg, size);
  if (!batching_) messages_since_launch_ += 1;
  return wcudaError::kSuccess;
}

wcudaError Frontend::on_launch(const std::string& kernel_name) {
  if (!config_.valid) return wcudaError::kInvalidConfiguration;
  if (!registry_->contains(kernel_name)) return wcudaError::kUnknownKernel;

  LaunchRequest req;
  req.owner = owner_;
  try {
    req.desc = registry_->instantiate(kernel_name, config_, args_);
  } catch (const std::exception&) {
    return wcudaError::kLaunchFailure;
  }
  if (staged_since_launch_ > 0) {
    req.desc.h2d_bytes = common::Bytes::from_bytes(
        static_cast<double>(staged_since_launch_));
  }
  req.staged_bytes = staged_since_launch_;
  req.api_messages = messages_since_launch_ + 1;  // + the launch itself
  req.reply = reply_;

  config_ = cudart::LaunchConfig{};
  args_.clear();
  messages_since_launch_ = 0;
  staged_since_launch_ = 0;

  if (!backend_.channel().send(std::move(req))) {
    return wcudaError::kLaunchFailure;
  }
  auto reply = reply_->receive();
  if (!reply.has_value()) return wcudaError::kLaunchFailure;
  last_reply_ = *reply;
  return last_reply_.ok ? wcudaError::kSuccess : wcudaError::kLaunchFailure;
}

}  // namespace ewc::consolidate
