// Energy-aware consolidation decision engine (paper Section VII, Figure 6).
//
// For a candidate set of pending kernels the engine predicts, with the
// Section V performance model and the Section VI power model, the execution
// time, average power and energy of three alternatives:
//   (a) consolidate onto the GPU as one kernel (plus framework overhead),
//   (b) run each kernel on the GPU individually (serial),
//   (c) run the instances on the multicore CPU (profiles assumed available).
// Energy E = P x T decides; consolidation must beat BOTH alternatives to be
// chosen, mirroring the paper's "judicious consolidation" rule.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cpusim/engine.hpp"
#include "gpusim/kernel_desc.hpp"
#include "perf/consolidation_model.hpp"
#include "power/power_model.hpp"
#include "consolidate/costs.hpp"

namespace ewc::consolidate {

using common::Duration;
using common::Energy;

enum class Alternative { kConsolidatedGpu, kIndividualGpu, kCpu };

const char* alternative_name(Alternative a);

struct AlternativeEstimate {
  Alternative which = Alternative::kConsolidatedGpu;
  Duration time = Duration::zero();
  Energy energy = Energy::zero();
  bool feasible = true;
  std::string note;
};

struct Decision {
  Alternative chosen = Alternative::kConsolidatedGpu;
  std::vector<AlternativeEstimate> estimates;  ///< all alternatives
  const AlternativeEstimate& chosen_estimate() const;
};

/// How the backend picks (ablation A4 swaps the policy).
enum class DecisionPolicy { kModelBased, kAlwaysConsolidate, kNeverConsolidate };

class DecisionEngine {
 public:
  DecisionEngine(gpusim::DeviceConfig dev, power::GpuPowerModel power_model,
                 cpusim::CpuConfig cpu_cfg, FrameworkCosts costs);

  /// Estimated framework overhead for staging/coordinating `requests`
  /// (public so the backend charges the same cost it predicted with).
  Duration overhead(
      const std::vector<gpusim::KernelInstance>& instances,
      const std::vector<std::size_t>& staged_bytes,
      const std::vector<int>& api_messages, const Optimizations& opts) const;

  /// Evaluate the three alternatives for a candidate consolidation. The CPU
  /// alternative needs per-instance CPU profiles; if any are missing the CPU
  /// path is reported infeasible.
  Decision decide(const gpusim::LaunchPlan& plan,
                  const std::vector<std::optional<cpusim::CpuTask>>& cpu_profiles,
                  Duration framework_overhead,
                  DecisionPolicy policy = DecisionPolicy::kModelBased) const;

  const perf::ConsolidationModel& perf_model() const { return perf_; }
  const power::GpuPowerModel& power_model() const { return power_; }

 private:
  gpusim::DeviceConfig dev_;
  perf::ConsolidationModel perf_;
  power::GpuPowerModel power_;
  cpusim::CpuConfig cpu_cfg_;
  FrameworkCosts costs_;
};

}  // namespace ewc::consolidate
