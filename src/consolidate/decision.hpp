// Energy-aware consolidation decision engine (paper Section VII, Figure 6).
//
// For a candidate set of pending kernels the engine predicts, with the
// Section V performance model and the Section VI power model, the execution
// time, average power and energy of three alternatives:
//   (a) consolidate onto the GPU as one kernel (plus framework overhead),
//   (b) run each kernel on the GPU individually (serial),
//   (c) run the instances on the multicore CPU (profiles assumed available).
// Energy E = P x T decides; consolidation must beat BOTH alternatives to be
// chosen, mirroring the paper's "judicious consolidation" rule.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_pool.hpp"
#include "cpusim/engine.hpp"
#include "gpusim/kernel_desc.hpp"
#include "gpusim/sim_cache.hpp"
#include "perf/consolidation_model.hpp"
#include "power/power_model.hpp"
#include "consolidate/costs.hpp"

namespace ewc::consolidate {

using common::Duration;
using common::Energy;

enum class Alternative { kConsolidatedGpu, kIndividualGpu, kCpu };

const char* alternative_name(Alternative a);

struct AlternativeEstimate {
  Alternative which = Alternative::kConsolidatedGpu;
  Duration time = Duration::zero();
  Energy energy = Energy::zero();
  bool feasible = true;
  std::string note;
};

struct Decision {
  Alternative chosen = Alternative::kConsolidatedGpu;
  std::vector<AlternativeEstimate> estimates;  ///< all alternatives
  const AlternativeEstimate& chosen_estimate() const;
};

/// How the backend picks (ablation A4 swaps the policy).
enum class DecisionPolicy { kModelBased, kAlwaysConsolidate, kNeverConsolidate };

class DecisionEngine {
 public:
  DecisionEngine(gpusim::DeviceConfig dev, power::GpuPowerModel power_model,
                 cpusim::CpuConfig cpu_cfg, FrameworkCosts costs);

  /// Estimated framework overhead for staging/coordinating `requests`
  /// (public so the backend charges the same cost it predicted with).
  Duration overhead(
      const std::vector<gpusim::KernelInstance>& instances,
      const std::vector<std::size_t>& staged_bytes,
      const std::vector<int>& api_messages, const Optimizations& opts) const;

  /// Evaluate the three alternatives for a candidate consolidation. The CPU
  /// alternative needs per-instance CPU profiles; if any are missing the CPU
  /// path is reported infeasible.
  ///
  /// With a pool attached the GPU alternatives are evaluated concurrently
  /// while the CPU alternative runs on the calling thread; the returned
  /// estimates are in the same fixed order either way. Do not call decide()
  /// from inside a task running on the attached pool.
  Decision decide(const gpusim::LaunchPlan& plan,
                  const std::vector<std::optional<cpusim::CpuTask>>& cpu_profiles,
                  Duration framework_overhead,
                  DecisionPolicy policy = DecisionPolicy::kModelBased) const;

  /// Evaluate the two GPU alternatives on `pool` (nullptr = calling thread).
  void set_pool(common::ThreadPool* pool) { pool_ = pool; }

  /// Memoize GPU time/power predictions keyed by the canonical plan
  /// signature. Framework overhead is applied *outside* the cache, and the
  /// per-instance predictions of the serial alternative share entries across
  /// batch positions (instance ids excluded from their keys). The power
  /// model is fixed per engine, so it need not appear in the key.
  void enable_prediction_cache(std::size_t capacity);
  void disable_prediction_cache();
  gpusim::CacheStats prediction_cache_stats() const;

  const perf::ConsolidationModel& perf_model() const { return perf_; }
  const power::GpuPowerModel& power_model() const { return power_; }

 private:
  /// A pure (overhead-free) GPU prediction — the unit the cache stores.
  struct GpuPrediction {
    Duration time = Duration::zero();
    Energy energy = Energy::zero();
    bool type1 = false;
  };

  GpuPrediction predict_gpu(const gpusim::LaunchPlan& plan,
                            std::string_view tag,
                            bool include_instance_ids) const;

  gpusim::DeviceConfig dev_;
  perf::ConsolidationModel perf_;
  power::GpuPowerModel power_;
  cpusim::CpuConfig cpu_cfg_;
  FrameworkCosts costs_;
  common::ThreadPool* pool_ = nullptr;
  // SimCache is internally synchronized, so the const decide() path may
  // populate it; mutable keeps that invisible to callers.
  mutable std::unique_ptr<gpusim::SimCache<GpuPrediction>> cache_;
  std::string cache_key_prefix_;  ///< device portion, encoded once
};

}  // namespace ewc::consolidate
