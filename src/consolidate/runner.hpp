// ExperimentRunner: the paper's four evaluation setups side by side.
//
// Every evaluation table/figure in Section VIII compares:
//   CPU     — all instances launched concurrently on the multicore CPU;
//   Serial  — GPU, one instance after another (no consolidation);
//   Manual  — hand-consolidated single kernel (no framework overheads, no
//             framework optimizations);
//   Dynamic — the full runtime framework: real frontends intercepting wcuda
//             calls, backend staging + decision engine + consolidation.
// The runner executes all four for a given workload mix and reports time and
// energy per setup, exactly the rows the paper's tables print.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "consolidate/backend.hpp"
#include "cpusim/engine.hpp"
#include "power/power_model.hpp"
#include "workloads/paper_configs.hpp"

namespace ewc::consolidate {

struct SetupResult {
  common::Duration time = common::Duration::zero();
  common::Energy energy = common::Energy::zero();
};

/// `count` instances of one calibrated workload spec.
struct WorkloadMix {
  workloads::InstanceSpec spec;
  int count = 1;
};

struct ComparisonResult {
  SetupResult cpu;
  SetupResult serial_gpu;
  SetupResult manual;
  SetupResult dynamic_framework;
  std::vector<BatchReport> dynamic_reports;
};

class ExperimentRunner {
 public:
  ExperimentRunner(const gpusim::FluidEngine& engine,
                   power::GpuPowerModel power_model,
                   BackendOptions options = {});

  /// Run all four setups on the mix.
  ComparisonResult compare(const std::vector<WorkloadMix>& mix) const;

  SetupResult run_cpu(const std::vector<WorkloadMix>& mix) const;
  SetupResult run_serial(const std::vector<WorkloadMix>& mix) const;
  SetupResult run_manual(const std::vector<WorkloadMix>& mix) const;
  /// Full framework path: one frontend thread per instance issuing real
  /// wcuda calls through interception. When `completions` is non-null it
  /// receives each instance's CompletionReply keyed by its owner name
  /// ("<spec>#<slot>") — the reference the socket-served path is compared
  /// against bit for bit.
  SetupResult run_dynamic(
      const std::vector<WorkloadMix>& mix,
      std::vector<BatchReport>* reports = nullptr,
      std::map<std::string, CompletionReply>* completions = nullptr) const;

 private:
  const gpusim::FluidEngine& engine_;
  power::GpuPowerModel power_model_;
  BackendOptions options_;
};

}  // namespace ewc::consolidate
