#include "consolidate/queue_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <string_view>

#include "common/stats.hpp"
#include "cpusim/engine.hpp"
#include "obs/histogram.hpp"
#include "obs/tracer.hpp"
#include "trace/counters.hpp"

namespace ewc::consolidate {

QueueSimulator::QueueSimulator(
    const gpusim::FluidEngine& engine, power::GpuPowerModel power_model,
    std::map<std::string, workloads::InstanceSpec> catalogue,
    QueueSimOptions options)
    : engine_(engine),
      decision_(engine.device(), std::move(power_model), options.cpu_config,
                options.costs),
      catalogue_(std::move(catalogue)),
      options_(options) {
  if (options_.enable_sim_cache) {
    run_cache_ = std::make_unique<gpusim::RunResultCache>(
        options_.sim_cache_capacity);
    run_key_prefix_ = gpusim::config_key_prefix(engine_.device(),
                                                &engine_.energy_config());
    decision_.enable_prediction_cache(options_.sim_cache_capacity);
  }
  decision_.set_pool(options_.pool);
}

QueueSimResult QueueSimulator::run(
    const std::vector<trace::Request>& requests) const {
  for (std::size_t i = 1; i < requests.size(); ++i) {
    if (requests[i].arrival_seconds < requests[i - 1].arrival_seconds) {
      throw std::invalid_argument("QueueSimulator: trace not sorted");
    }
  }

  QueueSimResult result;
  const double idle_w =
      engine_.energy_config().system_idle_with_gpu.watts();
  const double gpu_idle_delta_w =
      idle_w - engine_.energy_config().host_only_idle.watts();

  // Per-batch counters bump through cached handles: one registry lookup
  // here, then a lock-free atomic add per batch inside the loop.
  auto& counters = trace::Counters::instance();
  auto batches_ctr = counters.handle("queue_sim.batches");
  auto requests_ctr = counters.handle("queue_sim.requests");
  obs::Histogram* batch_hist =
      obs::HistogramRegistry::instance().get("queue_sim.batch_size");
  obs::Histogram* latency_hist = obs::HistogramRegistry::instance().get(
      "queue_sim.request_latency_seconds");

  std::size_t next = 0;
  double t_free = 0.0;
  double busy_and_gap_joules = 0.0;

  // Per-batch working buffers, hoisted so a long trace replay allocates them
  // once: after the first few batches every clear()/push_back cycle runs
  // inside retained capacity (same SoA-era discipline as FluidEngine's
  // arena; DecisionEngine's parallel evaluation depends on `plan` staying
  // stable for the batch).
  std::vector<trace::Request> batch;
  gpusim::LaunchPlan plan;
  std::vector<std::optional<cpusim::CpuTask>> profiles;
  std::vector<std::size_t> staged;
  std::vector<int> messages;
  std::vector<cpusim::CpuTask> cpu_tasks;

  while (next < requests.size()) {
    // ---- form one batch ----
    batch.clear();
    batch.push_back(requests[next++]);
    const double deadline =
        batch.front().arrival_seconds + options_.batch_timeout.seconds();
    while (static_cast<int>(batch.size()) < options_.batch_threshold &&
           next < requests.size() &&
           requests[next].arrival_seconds <= deadline) {
      batch.push_back(requests[next++]);
    }
    const bool filled =
        static_cast<int>(batch.size()) >= options_.batch_threshold;
    // The batch triggers when it fills or when the timeout expires. An
    // under-filled batch always waits out the timeout: the runtime cannot
    // know the trace has drained, so a flush at the last arrival would
    // let the final batch jump its own deadline.
    double ready = filled ? batch.back().arrival_seconds : deadline;

    // ---- build the launch plan + profiles ----
    plan.instances.clear();
    plan.reuse_constant_data = options_.optimizations.constant_data_reuse;
    profiles.clear();
    staged.clear();
    messages.clear();
    for (std::size_t b = 0; b < batch.size(); ++b) {
      auto it = catalogue_.find(batch[b].workload);
      if (it == catalogue_.end()) {
        throw std::out_of_range("QueueSimulator: unknown workload '" +
                                batch[b].workload + "'");
      }
      gpusim::KernelInstance inst;
      inst.desc = it->second.gpu;
      inst.instance_id = static_cast<int>(b);
      inst.owner = "user" + std::to_string(batch[b].user_id);
      plan.instances.push_back(std::move(inst));
      cpusim::CpuTask task = it->second.cpu;
      task.instance_id = static_cast<int>(b);
      profiles.emplace_back(std::move(task));
      staged.push_back(
          static_cast<std::size_t>(it->second.gpu.h2d_bytes.bytes()));
      messages.push_back(options_.optimizations.argument_batching ? 4 : 7);
    }

    const auto overhead = decision_.overhead(plan.instances, staged, messages,
                                             options_.optimizations);
    const auto decision =
        decision_.decide(plan, profiles, overhead, options_.policy);

    // ---- execute ----
    // Same batch shapes recur constantly in a datacenter replay, and a cache
    // hit is bit-identical to a fresh simulation (the key encodes every
    // input exactly), so memoizing the FluidEngine runs only saves time.
    const auto simulate = [&](std::string_view tag,
                              auto&& fresh) -> gpusim::RunResult {
      if (!run_cache_) return fresh();
      const auto sig = gpusim::plan_signature_with_prefix(
          plan, run_key_prefix_, tag, /*include_instance_ids=*/true);
      if (auto hit = run_cache_->get(sig)) return *hit;
      gpusim::RunResult fresh_run = fresh();
      run_cache_->put(sig, fresh_run);
      return fresh_run;
    };

    const double start = std::max(ready, t_free);

    double exec_seconds = 0.0;
    double exec_joules = 0.0;
    // The engine's sim-clock events are relative to its own t=0; anchor them
    // at this batch's execution start on the queue timeline.
    obs::SimClockScope sim_base(start + overhead.seconds());
    switch (decision.chosen) {
      case Alternative::kConsolidatedGpu: {
        const auto run = simulate("run", [&] { return engine_.run(plan); });
        exec_seconds = run.total_time.seconds();
        exec_joules = run.system_energy.joules();
        break;
      }
      case Alternative::kIndividualGpu: {
        const auto run = simulate(
            "serial", [&] { return engine_.run_serial(plan.instances); });
        exec_seconds = run.total_time.seconds();
        exec_joules = run.system_energy.joules();
        break;
      }
      case Alternative::kCpu: {
        cpu_tasks.clear();
        for (auto& p : profiles) cpu_tasks.push_back(*p);
        cpusim::CpuEngine cpu(options_.cpu_config);
        const auto run = cpu.run(cpu_tasks);
        exec_seconds = run.makespan.seconds();
        exec_joules = run.system_energy.joules() +
                      gpu_idle_delta_w * run.makespan.seconds();
        break;
      }
    }

    const double gap = start - t_free;  // node idles between batches
    const double finish = start + overhead.seconds() + exec_seconds;
    busy_and_gap_joules += gap * idle_w + overhead.seconds() * idle_w +
                           exec_joules;

    batches_ctr.inc();
    requests_ctr.add(static_cast<double>(batch.size()));
    batch_hist->record(static_cast<double>(batch.size()));
    if (obs::Tracer::enabled()) {
      // sim_base anchors at start+overhead; back up to the batch's start.
      obs::sim_span("queue_sim.batch", -overhead.seconds(),
                    finish - start, 0,
                    "\"requests\":" + std::to_string(batch.size()) +
                        ",\"chosen\":\"" +
                        alternative_name(decision.chosen) + "\"");
    }

    for (const auto& req : batch) {
      RequestOutcome o;
      o.user_id = req.user_id;
      o.workload = req.workload;
      o.arrival_seconds = req.arrival_seconds;
      o.finish_seconds = finish;
      result.outcomes.push_back(std::move(o));
    }
    t_free = finish;
    result.batches += 1;
  }

  result.makespan = common::Duration::from_seconds(t_free);
  result.energy = common::Energy::from_joules(busy_and_gap_joules);

  std::vector<double> latencies;
  latencies.reserve(result.outcomes.size());
  for (const auto& o : result.outcomes) {
    latencies.push_back(o.latency_seconds());
    latency_hist->record(o.latency_seconds());
  }
  result.mean_latency_seconds = common::mean(latencies);
  result.p95_latency_seconds = common::percentile(latencies, 95.0);

  if (run_cache_) result.run_cache_stats = run_cache_->stats();
  result.predict_cache_stats = decision_.prediction_cache_stats();
  counters.set("queue_sim.run_cache.hits",
               static_cast<double>(result.run_cache_stats.hits));
  counters.set("queue_sim.run_cache.misses",
               static_cast<double>(result.run_cache_stats.misses));
  counters.set("queue_sim.run_cache.evictions",
               static_cast<double>(result.run_cache_stats.evictions));
  counters.set("queue_sim.predict_cache.hits",
               static_cast<double>(result.predict_cache_stats.hits));
  counters.set("queue_sim.predict_cache.misses",
               static_cast<double>(result.predict_cache_stats.misses));
  counters.set("queue_sim.predict_cache.evictions",
               static_cast<double>(result.predict_cache_stats.evictions));
  return result;
}

}  // namespace ewc::consolidate
