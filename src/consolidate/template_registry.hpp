// Precompiled consolidation templates (paper Section IV).
//
// A template is a pre-generated CUDA kernel that can execute any mix of
// instances of a fixed set of workload kernels (renamed variables, re-indexed
// accesses, if-else dispatch of blocks). It is parameterized by instance
// counts and block partitioning, but it was compiled for a bounded combined
// grid, so a batch larger than its capacity must be split into several
// consolidated launches. The backend can only consolidate candidate sets for
// which a template exists — exactly the paper's constraint.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

namespace ewc::consolidate {

struct ConsolidationTemplate {
  std::string name;
  /// Workload kernels this template can host (a candidate set is coverable
  /// iff every kernel name is in this set).
  std::set<std::string> kernels;
  /// Combined-grid capacity the template was compiled for.
  int max_total_blocks = 240;  ///< 8 resident blocks x 30 SMs
};

class TemplateRegistry {
 public:
  void add(ConsolidationTemplate t);

  /// The template covering all `kernel_names`, preferring the narrowest
  /// match (fewest hosted kernels); nullptr when none covers the set.
  const ConsolidationTemplate* find(
      const std::vector<std::string>& kernel_names) const;

  /// Register a single-workload (homogeneous) template for `kernel`.
  void add_homogeneous(const std::string& kernel, int max_total_blocks = 240);

  std::size_t size() const { return templates_.size(); }

  /// The paper's manually pre-designed template set: homogeneous templates
  /// for the five workloads plus the heterogeneous pairs evaluated in
  /// Section VIII (encryption+montecarlo, search+blackscholes).
  static TemplateRegistry paper_defaults();

 private:
  std::vector<ConsolidationTemplate> templates_;
};

}  // namespace ewc::consolidate
