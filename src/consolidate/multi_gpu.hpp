// Multi-GPU consolidation scheduling.
//
// The paper provisions for nodes with several GPUs — its batching threshold
// is "10 times the number of available GPUs" — but evaluates on one C1060.
// This extension completes the path: a batch of pending kernels is
// partitioned across K identical GPUs (longest-processing-time-first on the
// Section V predictions), each GPU executes its share as one consolidated
// launch, and the node-level makespan/energy account for the host once and
// for every GPU's idle draw.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "gpusim/engine.hpp"
#include "perf/consolidation_model.hpp"

namespace ewc::consolidate {

using common::Duration;
using common::Energy;

struct FarmResult {
  Duration makespan = Duration::zero();
  Energy energy = Energy::zero();
  std::vector<Duration> per_gpu_time;  ///< one entry per GPU (may be zero)
  std::vector<int> per_gpu_instances;
};

class MultiGpuScheduler {
 public:
  /// @param engine    the per-GPU device model (GPUs are identical).
  /// @param num_gpus  >= 1.
  /// @throws std::invalid_argument if num_gpus < 1.
  MultiGpuScheduler(const gpusim::FluidEngine& engine, int num_gpus);

  /// LPT partition of `instances` by predicted standalone total time.
  std::vector<std::vector<gpusim::KernelInstance>> partition(
      const std::vector<gpusim::KernelInstance>& instances) const;

  /// Partition, consolidate per GPU, and account node-level time/energy.
  FarmResult run(const std::vector<gpusim::KernelInstance>& instances,
                 bool reuse_constant_data = true) const;

  int num_gpus() const { return num_gpus_; }

 private:
  const gpusim::FluidEngine& engine_;
  perf::ConsolidationModel model_;
  int num_gpus_;
};

}  // namespace ewc::consolidate
