// Frontend <-> backend message protocol.
//
// In the paper the frontend is a shared library that forwards intercepted
// CUDA API information over a connection to the backend daemon, which is the
// only process that actually talks to the GPU. Here each message carries the
// resolved kernel descriptor (the backend would have resolved it from the
// API arguments anyway) plus the accounting the overhead model needs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>

#include "common/channel.hpp"
#include "common/units.hpp"
#include "gpusim/kernel_desc.hpp"

namespace ewc::consolidate {

/// Backend's answer to one kernel launch, delivered when the batch the
/// kernel joined has finished executing.
struct CompletionReply {
  bool ok = false;
  std::string error;
  /// Echo of LaunchRequest::request_id, so transports that multiplex many
  /// launches over one reply channel (the ewcd socket server) can correlate.
  std::uint64_t request_id = 0;
  /// Echo of LaunchRequest::owner. In-process only — never wire-encoded —
  /// so a server routing all backend replies through one channel can key
  /// its (session, owner, request_id) delivery/dedup tables. request_id
  /// alone is not unique across connections.
  std::string owner;
  /// Echo of LaunchRequest::session. In-process only. Scopes the server's
  /// delivery/dedup keys to one client session so deterministic owner
  /// names and restarting request-id sequences cannot collide across
  /// client process lifetimes. 0 for the in-process frontend path.
  std::uint64_t session = 0;
  /// Simulated wall time from batch start to this instance's completion.
  common::Duration finish_time = common::Duration::zero();
  /// Where the instance actually ran.
  enum class Where { kConsolidatedGpu, kIndividualGpu, kCpu } where =
      Where::kConsolidatedGpu;
};

using ReplyChannel = common::Channel<CompletionReply>;

/// A kernel launch intercepted by a frontend.
struct LaunchRequest {
  std::string owner;
  /// Transport-level correlation id, echoed into the CompletionReply. The
  /// in-process Frontend leaves it 0 (its reply channel carries one launch
  /// at a time); the socket server assigns per-connection unique ids.
  std::uint64_t request_id = 0;
  /// Client session the launch arrived on, echoed into the CompletionReply.
  /// Stamped by the socket server (from the hello handshake) before the
  /// request enters the backend channel; never wire-encoded. 0 in-process.
  std::uint64_t session = 0;
  /// Distributed-trace context: the end-to-end trace this launch belongs to
  /// and the upstream span it hangs under. Assigned by the originating
  /// client, carried on the wire by the additive launch fields, and threaded
  /// through the backend so FluidEngine phase events land in the same trace.
  /// 0 = no context (pre-trace peers, tracing disabled).
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  gpusim::KernelDesc desc;
  /// Bytes the frontend staged through the backend buffer for this launch.
  std::size_t staged_bytes = 0;
  /// API messages this launch cost on the wire (depends on batching).
  int api_messages = 0;
  std::shared_ptr<ReplyChannel> reply;
};

/// Main-thread request to process everything pending immediately.
struct FlushRequest {
  std::shared_ptr<common::Channel<bool>> done;
};

struct ShutdownRequest {};

using BackendMessage =
    std::variant<LaunchRequest, FlushRequest, ShutdownRequest>;

}  // namespace ewc::consolidate
