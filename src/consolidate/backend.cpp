#include "consolidate/backend.hpp"

#include <algorithm>
#include <chrono>

#include "common/log.hpp"
#include "fault/injector.hpp"
#include "obs/histogram.hpp"
#include "obs/tracer.hpp"
#include "trace/counters.hpp"

namespace ewc::consolidate {

namespace {
/// Extra wall power the idle GPU adds to the node when the framework routes
/// a batch to the CPU (the GPU stays installed, unlike the paper's
/// disconnected-GPU baseline measurements).
common::Power gpu_idle_adder(const gpusim::EnergyConfig& e) {
  return common::Power::from_watts(e.system_idle_with_gpu.watts() -
                                   e.host_only_idle.watts());
}
}  // namespace

Backend::Backend(const gpusim::FluidEngine& engine,
                 power::GpuPowerModel power_model, TemplateRegistry templates,
                 BackendOptions options)
    : engine_(engine),
      decision_(engine.device(), std::move(power_model), options.cpu_config,
                options.costs),
      templates_(std::move(templates)),
      options_(options),
      context_("backend", std::size_t{4} * 1024 * 1024 * 1024) {
  if (options_.decision_deadline > common::Duration::zero()) {
    decision_worker_ = std::thread([this] { decision_loop(); });
  }
  worker_ = std::thread([this] { run_loop(); });
}

Backend::~Backend() { shutdown(); }

void Backend::set_cpu_profile(const std::string& kernel_name,
                              cpusim::CpuTask task) {
  std::lock_guard lock(state_mutex_);
  cpu_profiles_[kernel_name] = std::move(task);
}

void Backend::flush() {
  auto done = std::make_shared<common::Channel<bool>>();
  channel_.send(FlushRequest{done});
  done->receive();
}

void Backend::shutdown() {
  if (!worker_.joinable()) return;
  channel_.send(ShutdownRequest{});
  channel_.close();
  worker_.join();
  // The batch thread is done, so no new decide jobs can arrive; wait out
  // whatever decide is still in flight (injected stalls are finite).
  decide_jobs_.close();
  if (decision_worker_.joinable()) decision_worker_.join();
}

std::vector<BatchReport> Backend::reports() const {
  std::lock_guard lock(state_mutex_);
  return reports_;
}

common::Duration Backend::total_time() const {
  std::lock_guard lock(state_mutex_);
  return total_time_;
}

common::Energy Backend::total_energy() const {
  std::lock_guard lock(state_mutex_);
  return total_energy_;
}

void Backend::run_loop() {
  std::vector<LaunchRequest> pending;
  for (;;) {
    auto msg = channel_.receive();
    if (!msg.has_value()) {
      // Closed and drained without a ShutdownRequest (a crashing producer, a
      // test tearing the channel down). The pending requests will never
      // execute; answer their reply channels instead of leaving the owning
      // frontends blocked forever.
      fail_pending(pending, "backend channel closed before batch executed");
      break;
    }
    if (std::holds_alternative<ShutdownRequest>(*msg)) {
      if (!pending.empty()) process_batch(pending);
      break;
    }
    if (auto* flush = std::get_if<FlushRequest>(&*msg)) {
      if (!pending.empty()) process_batch(pending);
      flush->done->send(true);
      continue;
    }
    pending.push_back(std::move(std::get<LaunchRequest>(*msg)));
    if (static_cast<int>(pending.size()) >= options_.batch_threshold) {
      process_batch(pending);
    }
  }
}

void Backend::fail_pending(std::vector<LaunchRequest>& pending,
                           const std::string& error) {
  for (auto& req : pending) {
    if (!req.reply) continue;
    CompletionReply reply;
    reply.ok = false;
    reply.error = error;
    reply.request_id = req.request_id;
    reply.owner = req.owner;
    reply.session = req.session;
    req.reply->send(std::move(reply));
  }
  pending.clear();
}

void Backend::decision_loop() {
  for (;;) {
    auto job = decide_jobs_.receive();
    if (!job.has_value()) break;  // closed and drained: shutting down
    DecideOutcome out;
    try {
      out.decision =
          decision_.decide(job->plan, job->profiles, job->overhead,
                           job->policy);
      out.ok = true;
    } catch (const std::exception& e) {
      out.error = e.what();
    }
    // The batch thread may have degraded and walked away already; the
    // shared channel keeps this send safe and the late result unread.
    job->done->send(std::move(out));
  }
}

std::optional<Decision> Backend::bounded_decide(
    const gpusim::LaunchPlan& plan,
    const std::vector<std::optional<cpusim::CpuTask>>& profiles,
    common::Duration overhead, std::string* degraded_reason) {
  if (options_.decision_deadline <= common::Duration::zero()) {
    try {
      return decision_.decide(plan, profiles, overhead, options_.policy);
    } catch (const std::exception& e) {
      *degraded_reason = e.what();
      return std::nullopt;
    }
  }
  DecideJob job;
  job.plan = plan;
  job.profiles = profiles;
  job.overhead = overhead;
  job.policy = options_.policy;
  job.done = std::make_shared<common::Channel<DecideOutcome>>();
  auto done = job.done;
  if (!decide_jobs_.send(std::move(job))) {
    *degraded_reason = "decision worker unavailable";
    return std::nullopt;
  }
  auto out = done->receive_for(options_.decision_deadline);
  if (!out.has_value()) {
    *degraded_reason =
        "decision deadline exceeded (" +
        std::to_string(options_.decision_deadline.seconds()) + "s)";
    return std::nullopt;
  }
  if (!out->ok) {
    *degraded_reason = out->error;
    return std::nullopt;
  }
  return std::move(out->decision);
}

void Backend::process_batch(std::vector<LaunchRequest>& batch) {
  if (auto a = fault::hit("backend.batch");
      a.kind == fault::ActionKind::kFail) {
    fail_pending(batch, "injected backend batch failure");
    return;
  }
  static obs::Histogram* batch_hist =
      obs::HistogramRegistry::instance().get("backend.batch_size");
  batch_hist->record(static_cast<double>(batch.size()));
  obs::ScopedSpan span("backend.batch");
  if (span.active()) {
    span.set_args("\"requests\":" + std::to_string(batch.size()));
  }

  // Frontends race to the channel; order the batch by owner so results are
  // deterministic regardless of host thread scheduling.
  std::sort(batch.begin(), batch.end(),
            [](const LaunchRequest& a, const LaunchRequest& b) {
              return a.owner < b.owner;
            });

  // Partition into candidate groups by template coverage (paper Section
  // VII): each request joins the first group whose (possibly upgraded)
  // template also covers it; requests no template covers form their own
  // "run normally" groups.
  struct Group {
    std::vector<LaunchRequest> requests;
    const ConsolidationTemplate* tmpl = nullptr;
    std::vector<std::string> names;
  };
  std::vector<Group> groups;
  for (auto& req : batch) {
    bool placed = false;
    for (auto& g : groups) {
      if (g.tmpl == nullptr) continue;
      std::vector<std::string> candidate = g.names;
      candidate.push_back(req.desc.name);
      if (const ConsolidationTemplate* t = templates_.find(candidate)) {
        g.tmpl = t;
        g.names = std::move(candidate);
        g.requests.push_back(std::move(req));
        placed = true;
        break;
      }
    }
    if (!placed) {
      Group g;
      g.names = {req.desc.name};
      g.tmpl = templates_.find(g.names);
      g.requests.push_back(std::move(req));
      groups.push_back(std::move(g));
    }
  }
  batch.clear();

  for (auto& g : groups) {
    process_group(g.requests, g.tmpl);
  }
}

void Backend::process_group(std::vector<LaunchRequest>& batch,
                            const ConsolidationTemplate* tmpl) {
  using common::Duration;
  using common::Energy;

  obs::ScopedSpan span("backend.group");
  // Wall-clock start of this group's processing: every request in the batch
  // gets a per-request "backend.request" slice over [here, reply-send) so
  // trace-merge can anchor cross-process flow arrows on a backend span.
  const double group_start_us =
      obs::Tracer::enabled() ? obs::Tracer::now_us() : 0.0;

  BatchReport report;
  report.num_instances = static_cast<int>(batch.size());

  // Anchor this group's simulated-time events on the daemon's accumulated
  // simulated timeline: groups execute back-to-back in simulated time, so
  // the engine's own t=0 maps to everything that ran before plus this
  // group's framework overhead.
  double sim_anchor = 0.0;
  if (obs::Tracer::enabled()) {
    std::lock_guard lock(state_mutex_);
    sim_anchor = total_time_.seconds();
  }

  // Assemble the candidate set.
  gpusim::LaunchPlan plan;
  plan.reuse_constant_data = options_.optimizations.constant_data_reuse;
  std::vector<std::size_t> staged;
  std::vector<int> messages;
  std::vector<std::optional<cpusim::CpuTask>> profiles;
  {
    std::lock_guard lock(state_mutex_);
    for (auto& req : batch) {
      gpusim::KernelInstance inst;
      inst.desc = req.desc;
      inst.owner = req.owner;
      inst.instance_id = next_instance_id_++;
      plan.instances.push_back(std::move(inst));
      staged.push_back(req.staged_bytes);
      messages.push_back(req.api_messages);
      report.kernel_names.push_back(req.desc.name);
      auto it = cpu_profiles_.find(req.desc.name);
      if (it != cpu_profiles_.end()) {
        cpusim::CpuTask t = it->second;
        t.instance_id = plan.instances.back().instance_id;
        profiles.emplace_back(std::move(t));
      } else {
        profiles.emplace_back(std::nullopt);
      }
    }
  }

  const Duration overhead = decision_.overhead(
      plan.instances, staged, messages, options_.optimizations);
  report.overhead = overhead;

  // Template coverage gates consolidation (paper Section IV).
  report.template_found = tmpl != nullptr;
  if (tmpl != nullptr) report.template_name = tmpl->name;

  Alternative chosen = Alternative::kIndividualGpu;
  if (tmpl != nullptr) {
    // The predictor is a component that can misbehave, not an oracle: if it
    // throws or overruns its deadline (a bounded wait on the decision
    // thread — a hung decide cannot wedge the batch), degrade to the
    // paper's serial (unconsolidated) plan instead of failing the group.
    std::string degraded_reason;
    std::optional<Decision> d =
        bounded_decide(plan, profiles, overhead, &degraded_reason);
    if (d.has_value()) {
      chosen = d->chosen;
      report.decision = std::move(d);
    } else {
      report.degraded = true;
      report.degraded_reason = std::move(degraded_reason);
    }
    if (report.degraded) {
      chosen = Alternative::kIndividualGpu;
      static trace::Counters::Handle degraded_counter =
          trace::Counters::instance().handle("server.degraded_decisions");
      degraded_counter.inc();
      if (obs::Tracer::enabled()) {
        obs::instant("backend.degraded",
                     batch.empty() ? 0 : batch.front().request_id,
                     "\"reason\":\"" + obs::json_escape(report.degraded_reason) +
                         "\"");
      }
      common::log_info("backend: degraded to serial execution: ",
                       report.degraded_reason);
    }
  } else {
    common::log_info("backend: no template covers batch; running individually");
  }
  report.executed = chosen;

  // ---- execute the chosen alternative ----
  Duration exec_time = Duration::zero();
  Energy energy = Energy::zero();
  std::vector<CompletionReply> replies(batch.size());

  auto record_gpu_completions = [&](const gpusim::RunResult& run,
                                    Duration offset,
                                    CompletionReply::Where where,
                                    std::size_t first_batch_index) {
    for (const auto& c : run.completions) {
      // instance_id is batch-relative here: map back to the request order.
      for (std::size_t i = first_batch_index; i < plan.instances.size(); ++i) {
        if (plan.instances[i].instance_id == c.instance_id) {
          replies[i].ok = true;
          replies[i].where = where;
          replies[i].finish_time = overhead + offset + c.finish_time;
          break;
        }
      }
    }
  };

  switch (chosen) {
    case Alternative::kConsolidatedGpu: {
      // Split by template capacity; splits execute back-to-back.
      std::vector<gpusim::LaunchPlan> chunks;
      gpusim::LaunchPlan current;
      current.reuse_constant_data = plan.reuse_constant_data;
      int blocks = 0;
      const int cap = tmpl ? tmpl->max_total_blocks : 240;
      for (auto& inst : plan.instances) {
        if (blocks > 0 && blocks + inst.desc.num_blocks > cap) {
          chunks.push_back(std::move(current));
          current = gpusim::LaunchPlan{};
          current.reuse_constant_data = plan.reuse_constant_data;
          blocks = 0;
        }
        blocks += inst.desc.num_blocks;
        current.instances.push_back(inst);
      }
      if (!current.instances.empty()) chunks.push_back(std::move(current));
      report.consolidated_launches = static_cast<int>(chunks.size());

      Duration offset = Duration::zero();
      for (const auto& chunk : chunks) {
        obs::SimClockScope sim_base(sim_anchor + overhead.seconds() +
                                    offset.seconds());
        const gpusim::RunResult run = engine_.run(chunk);
        record_gpu_completions(run, offset,
                               CompletionReply::Where::kConsolidatedGpu, 0);
        offset += run.total_time;
        energy += run.system_energy;
      }
      exec_time = offset;
      break;
    }
    case Alternative::kIndividualGpu: {
      Duration offset = Duration::zero();
      for (std::size_t i = 0; i < plan.instances.size(); ++i) {
        gpusim::LaunchPlan single;
        single.instances.push_back(plan.instances[i]);
        obs::SimClockScope sim_base(sim_anchor + overhead.seconds() +
                                    offset.seconds());
        obs::RequestScope req_scope(batch[i].request_id);
        obs::TraceScope trace_scope(batch[i].trace_id,
                                    batch[i].parent_span_id);
        const gpusim::RunResult run = engine_.run(single);
        replies[i].ok = true;
        replies[i].where = CompletionReply::Where::kIndividualGpu;
        replies[i].finish_time = overhead + offset + run.total_time;
        offset += run.total_time;
        energy += run.system_energy;
      }
      exec_time = offset;
      break;
    }
    case Alternative::kCpu: {
      std::vector<cpusim::CpuTask> tasks;
      for (auto& p : profiles) tasks.push_back(*p);  // feasibility checked
      cpusim::CpuEngine cpu(options_.cpu_config);
      const cpusim::CpuRunResult run = cpu.run(tasks);
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        for (const auto& c : run.completions) {
          if (c.instance_id == tasks[i].instance_id) {
            replies[i].ok = true;
            replies[i].where = CompletionReply::Where::kCpu;
            replies[i].finish_time = overhead + c.finish_time;
            break;
          }
        }
      }
      exec_time = run.makespan;
      energy = run.system_energy +
               gpu_idle_adder(engine_.energy_config()) * run.makespan;
      break;
    }
  }

  // The node sits near idle through the overhead window.
  energy += engine_.energy_config().system_idle_with_gpu * overhead;

  report.execution_time = exec_time;
  report.total_time = overhead + exec_time;
  report.energy = energy;

  if (span.active()) {
    std::string args = "\"instances\":" + std::to_string(batch.size()) +
                       ",\"chosen\":\"" + alternative_name(chosen) + "\"";
    if (tmpl != nullptr) {
      args += ",\"template\":\"" + obs::json_escape(tmpl->name) + "\"";
    }
    if (report.degraded) args += ",\"degraded\":true";
    span.set_args(std::move(args));
  }

  {
    std::lock_guard lock(state_mutex_);
    total_time_ += report.total_time;
    total_energy_ += report.energy;
    reports_.push_back(report);
    // Published as gauges so remote harnesses (loadgen) can read the
    // simulated energy/time totals over the kStats wire and compute
    // joules/request without an in-process Backend handle.
    static trace::Counters::Handle energy_counter =
        trace::Counters::instance().handle("backend.total_energy_joules");
    static trace::Counters::Handle time_counter =
        trace::Counters::instance().handle("backend.total_time_seconds");
    energy_counter.set(total_energy_.joules());
    time_counter.set(total_time_.seconds());
  }

  const bool tracing = obs::Tracer::enabled();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!replies[i].ok) {
      replies[i].ok = false;
      replies[i].error = "instance completion not recorded";
    }
    replies[i].request_id = batch[i].request_id;
    replies[i].owner = batch[i].owner;
    replies[i].session = batch[i].session;
    if (tracing) {
      obs::TraceScope trace_scope(batch[i].trace_id,
                                  batch[i].parent_span_id);
      obs::instant("backend.reply", batch[i].request_id,
                   "\"where\":" +
                       std::to_string(static_cast<int>(replies[i].where)) +
                       ",\"ok\":" + (replies[i].ok ? "true" : "false"));
      // Per-request backend residency slice [group start, reply send);
      // carries the distributed-trace context so the merged fleet trace
      // draws a flow arrow into the backend stage.
      obs::SpanEvent ev;
      ev.name = "backend.request";
      ev.request_id = batch[i].request_id;
      ev.trace_id = batch[i].trace_id;
      ev.parent_span_id = batch[i].parent_span_id;
      ev.ts_us = group_start_us;
      ev.dur_us = obs::Tracer::now_us() - group_start_us;
      obs::Tracer::instance().record(std::move(ev));
    }
    if (batch[i].reply) batch[i].reply->send(replies[i]);
  }
  batch.clear();
}

}  // namespace ewc::consolidate
