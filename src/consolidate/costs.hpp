// Framework overhead model (paper Section IV, "Our run-time consolidation
// does have overheads").
//
// The paper names three overhead sources: (1) memory copies between the
// frontends and the backend's pre-allocated buffer, (2) frontend<->backend
// communication, and (3) synchronization among frontends. Each is modelled
// with an explicit cost term below. Values marked [calibrated] are fitted to
// the overhead behaviour the paper reports (dynamic tracks manual closely for
// few instances; homogeneous consolidation overhead grows superlinearly with
// instance count until it erases the benefit); the rest are physical.
#pragma once

#include "common/units.hpp"

namespace ewc::consolidate {

using common::Bandwidth;
using common::Duration;

struct FrameworkCosts {
  /// One frontend->backend->frontend message round trip (UNIX socket +
  /// scheduler wakeup on the 2.6.31 kernel). [calibrated]
  Duration ipc_round_trip = Duration::from_millis(12.0);

  /// Fixed cost of staging one instance's data through the backend's
  /// pre-allocated buffer (pin, chunked memcpy protocol, ACK). [calibrated]
  Duration staging_fixed = Duration::from_millis(25.0);

  /// Sustained frontend->staging-buffer copy rate (pageable memcpy with the
  /// backend concurrently draining the buffer).
  Bandwidth staging_bandwidth = Bandwidth::from_gb_per_second(0.8);

  /// The single staging buffer serializes instances; each queued instance
  /// waits for the previous rounds, adding one round per predecessor.
  /// [calibrated — reproduces Figure 7's superlinear overhead growth]
  Duration staging_round = Duration::from_millis(45.0);

  /// Per-frontend barrier cost when the backend synchronizes a group.
  Duration barrier_per_frontend = Duration::from_millis(8.0);

  /// Model evaluation cost for one candidate set (Section VII notes it is
  /// low because all parameters except instance counts are offline).
  Duration decision_eval = Duration::from_millis(2.0);

  /// Messages per launch without argument batching: malloc + memcpy +
  /// configure + ~3 setup_argument + launch.
  int messages_unbatched = 7;
  /// With batching, configure/arguments/launch travel as one message.
  int messages_batched = 4;
  /// A non-leader frontend in a homogeneous group only registers itself and
  /// ships its data; the leader speaks for the group.
  int messages_follower = 2;
};

/// Which of the paper's optimizations are enabled (ablation knobs).
struct Optimizations {
  bool leader_election = true;     ///< homogeneous-group coordination
  bool argument_batching = true;   ///< hold args until launch
  bool constant_data_reuse = true; ///< upload shared constants once
};

}  // namespace ewc::consolidate
