#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ewc::common {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: need at least one column");
  }
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << row[c]
         << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

}  // namespace ewc::common
