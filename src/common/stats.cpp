#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace ewc::common {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(idx);
  double frac = idx - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double relative_error(double predicted, double measured) {
  if (measured == 0.0) {
    // 0/0 is a perfect (if degenerate) prediction; anything else has no
    // defined relative error — NaN, never a fake 0.
    return predicted == 0.0 ? 0.0
                            : std::numeric_limits<double>::quiet_NaN();
  }
  return std::abs(predicted - measured) / std::abs(measured);
}

RelativeErrorSummary relative_error_summary(std::span<const double> predicted,
                                            std::span<const double> measured) {
  if (predicted.size() != measured.size()) {
    throw std::invalid_argument("relative_error_summary: size mismatch");
  }
  RelativeErrorSummary out;
  double sum = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double e = relative_error(predicted[i], measured[i]);
    if (std::isnan(e)) {
      ++out.skipped;
      continue;
    }
    ++out.counted;
    sum += e;
    out.max = std::max(out.max, e);
  }
  if (out.counted > 0) out.mean = sum / static_cast<double>(out.counted);
  return out;
}

double mean_relative_error(std::span<const double> predicted,
                           std::span<const double> measured) {
  return relative_error_summary(predicted, measured).mean;
}

double max_relative_error(std::span<const double> predicted,
                          std::span<const double> measured) {
  return relative_error_summary(predicted, measured).max;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace ewc::common
