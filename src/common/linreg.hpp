// Ordinary least-squares linear regression.
//
// The GPU power model (paper Section VI, Eq. 11) fits per-component dynamic
// power coefficients a_i plus an intercept lambda from training-benchmark
// measurements. This is a dense multivariate OLS: y ~ X * beta (+ intercept).
// A tiny ridge term keeps the normal equations well-conditioned when training
// kernels have correlated event rates.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ewc::common {

struct LinearFit {
  std::vector<double> coefficients;  ///< one per feature column
  double intercept = 0.0;
  double r_squared = 0.0;

  /// Apply the fitted model to one feature vector.
  double predict(std::span<const double> features) const;
};

/// Fit y ~ X*beta + intercept by least squares.
///
/// @param rows       feature matrix, rows.size() samples each of equal width.
/// @param y          targets, same length as rows.
/// @param fit_intercept  include a constant term (the paper's lambda).
/// @param ridge      Tikhonov damping added to the normal-equation diagonal.
/// @throws std::invalid_argument on shape mismatch or an empty problem.
LinearFit fit_least_squares(const std::vector<std::vector<double>>& rows,
                            std::span<const double> y,
                            bool fit_intercept = true, double ridge = 1e-9);

/// Solve the square system A x = b by Gaussian elimination with partial
/// pivoting. @throws std::runtime_error if A is singular.
std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b);

}  // namespace ewc::common
