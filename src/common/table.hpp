// ASCII table rendering for the benchmark harnesses.
//
// Every bench binary prints the corresponding paper table/figure as rows;
// TextTable keeps the formatting consistent and test-able.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ewc::common {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have the same width as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Render with column alignment and a header separator.
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& t);

}  // namespace ewc::common
