// A blocking multi-producer / multi-consumer channel.
//
// The consolidation framework's frontends and backend live on different host
// threads (standing in for different user processes); all their IPC flows
// through Channel<Message>. close() lets the backend drain outstanding
// messages and lets frontends observe shutdown instead of blocking forever.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/units.hpp"

namespace ewc::common {

template <class T>
class Channel {
 public:
  Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueue a message. Returns false if the channel is closed.
  bool send(T value) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return false;
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until a message is available or the channel is closed and drained.
  std::optional<T> receive() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Timed receive: block up to `timeout` (real wall-clock time) for a
  /// message. Returns nullopt on timeout or when the channel is closed and
  /// drained; a non-finite timeout waits indefinitely like receive().
  std::optional<T> receive_for(Duration timeout) {
    std::unique_lock lock(mu_);
    const auto ready = [&] { return !queue_.empty() || closed_; };
    if (!timeout.is_finite()) {
      cv_.wait(lock, ready);
    } else if (!cv_.wait_for(
                   lock, std::chrono::duration<double>(timeout.seconds()),
                   ready)) {
      return std::nullopt;
    }
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    std::lock_guard lock(mu_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Close the channel; pending messages remain receivable.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return queue_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace ewc::common
