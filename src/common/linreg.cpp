#include "common/linreg.hpp"

#include <cmath>
#include <stdexcept>

namespace ewc::common {

double LinearFit::predict(std::span<const double> features) const {
  if (features.size() != coefficients.size()) {
    throw std::invalid_argument("LinearFit::predict: feature width mismatch");
  }
  double y = intercept;
  for (std::size_t i = 0; i < features.size(); ++i) {
    y += coefficients[i] * features[i];
  }
  return y;
}

std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b) {
  const std::size_t n = a.size();
  if (b.size() != n) {
    throw std::invalid_argument("solve_linear_system: shape mismatch");
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: bring the largest remaining entry to the diagonal.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-300) {
      throw std::runtime_error("solve_linear_system: singular matrix");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      double f = a[r][col] / a[col][col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a[i][c] * x[c];
    x[i] = s / a[i][i];
  }
  return x;
}

LinearFit fit_least_squares(const std::vector<std::vector<double>>& rows,
                            std::span<const double> y, bool fit_intercept,
                            double ridge) {
  if (rows.empty() || rows.size() != y.size()) {
    throw std::invalid_argument("fit_least_squares: empty or mismatched data");
  }
  const std::size_t width = rows.front().size();
  for (const auto& r : rows) {
    if (r.size() != width) {
      throw std::invalid_argument("fit_least_squares: ragged feature matrix");
    }
  }
  const std::size_t dim = width + (fit_intercept ? 1 : 0);

  // Build the normal equations X'X beta = X'y with an appended 1-column for
  // the intercept. dim is small (<= ~10 features), so dense is fine.
  std::vector<std::vector<double>> xtx(dim, std::vector<double>(dim, 0.0));
  std::vector<double> xty(dim, 0.0);
  std::vector<double> aug(dim, 1.0);
  for (std::size_t s = 0; s < rows.size(); ++s) {
    for (std::size_t i = 0; i < width; ++i) aug[i] = rows[s][i];
    if (fit_intercept) aug[width] = 1.0;
    for (std::size_t i = 0; i < dim; ++i) {
      xty[i] += aug[i] * y[s];
      for (std::size_t j = 0; j < dim; ++j) xtx[i][j] += aug[i] * aug[j];
    }
  }
  for (std::size_t i = 0; i < dim; ++i) xtx[i][i] += ridge;

  std::vector<double> beta = solve_linear_system(std::move(xtx), std::move(xty));

  LinearFit fit;
  fit.coefficients.assign(beta.begin(), beta.begin() + static_cast<long>(width));
  fit.intercept = fit_intercept ? beta[width] : 0.0;

  // R^2 against the mean model.
  double ymean = 0.0;
  for (double v : y) ymean += v;
  ymean /= static_cast<double>(y.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t s = 0; s < rows.size(); ++s) {
    double pred = fit.predict(rows[s]);
    ss_res += (y[s] - pred) * (y[s] - pred);
    ss_tot += (y[s] - ymean) * (y[s] - ymean);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace ewc::common
