#include "common/csv.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ewc::common {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("CsvWriter: empty header");
  }
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("CsvWriter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_numeric_row(const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    cells.push_back(os.str());
  }
  add_row(std::move(cells));
}

void CsvWriter::write_to(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  write_to(os);
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  write_to(out);
}

}  // namespace ewc::common
