#include "common/thread_pool.hpp"

#include <algorithm>
#include <memory>

namespace ewc::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
    ++submitted_;
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++executed_;
    }
    job();
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{submitted_, executed_};
}

ThreadPool& ThreadPool::shared() {
  // Leaked on purpose: tears down only at process exit, after every client.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

namespace {

/// Shared state of one parallel_for: claimed via an index cursor so the
/// caller can execute iterations alongside the workers.
struct ParallelState {
  std::size_t begin = 0;
  std::size_t count = 0;
  const std::function<void(std::size_t)>* body = nullptr;

  std::mutex mu;
  std::condition_variable done;
  std::size_t next = 0;       ///< next unclaimed iteration
  std::size_t completed = 0;  ///< finished iterations
  std::exception_ptr error;

  void run_available() {
    for (;;) {
      std::size_t i;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (next >= count) return;
        i = next++;
      }
      std::exception_ptr err;
      try {
        (*body)(begin + i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (err && !error) error = std::move(err);
      if (++completed == count) done.notify_all();
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (n == 1) {
    body(begin);
    return;
  }

  auto state = std::make_shared<ParallelState>();
  state->begin = begin;
  state->count = n;
  state->body = &body;

  // One helper per worker (capped by iteration count); the caller claims
  // iterations too, so progress never depends on queue drain order.
  const std::size_t helpers = std::min(size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    enqueue([state] { state->run_available(); });
  }
  state->run_available();

  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&] { return state->completed == state->count; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace ewc::common
