// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (measurement noise, arrival
// processes, random candidate selection) draws from an explicitly seeded Rng
// so that tests and experiments are reproducible bit-for-bit across runs.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ewc::common {

/// A seedable RNG wrapper around xoshiro-quality std::mt19937_64 with the
/// convenience draws the library needs. Not thread safe: each thread or
/// component owns its own instance (split via `fork`).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Exponential inter-arrival time with the given rate (events / second).
  double exponential(double rate) {
    std::exponential_distribution<double> d(rate);
    return d(engine_);
  }

  /// Multiplicative noise factor: 1 + N(0, rel_sigma), clamped positive.
  double noise_factor(double rel_sigma) {
    double f = gaussian(1.0, rel_sigma);
    return f > 0.05 ? f : 0.05;
  }

  /// Pick an index in [0, n) uniformly.
  std::size_t pick_index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Derive an independent child generator (stable given call order).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace ewc::common
