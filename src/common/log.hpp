// Minimal leveled logger.
//
// The backend daemon and simulators log decision traces at Debug level; the
// default level is Warn so tests and benches stay quiet unless asked.
#pragma once

#include <sstream>
#include <string>

namespace ewc::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the process-wide minimum level (thread safe).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at `level` with a level prefix; no-op below the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <class... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <class... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug) {
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
  }
}
template <class... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo) {
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
  }
}
template <class... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn) {
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
  }
}
template <class... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError) {
    log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
  }
}

}  // namespace ewc::common
