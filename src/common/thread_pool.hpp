// A small fixed-size thread pool shared by the decision engine, the queue
// simulator and the bench sweep harnesses.
//
// Design constraints (in order):
//  * deterministic results for callers — the pool only runs independent
//    closures; any ordering-sensitive reduction happens in the caller after
//    join, so repeated runs produce identical output;
//  * TSan-clean shutdown — workers exit via a stop flag set under the queue
//    mutex and are joined in the destructor, never detached;
//  * no work stealing, no task priorities: decision workloads are a handful
//    of coarse closures, so a single mutex-protected FIFO is both simpler
//    and faster than per-thread deques at this granularity.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ewc::common {

class ThreadPool {
 public:
  /// @param threads  worker count; 0 picks hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a closure; the future carries its result (or exception).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Fire-and-forget submit: no future, no packaged_task allocation. The
  /// server reactor schedules its per-connection pumps through this on
  /// every frame, so the cheap path matters.
  void post(std::function<void()> job) { enqueue(std::move(job)); }

  /// Run body(i) for i in [begin, end) across the pool and wait for all of
  /// them. The calling thread participates, so parallel_for never deadlocks
  /// when invoked from inside a pool task. The first exception thrown by any
  /// iteration is rethrown here after the loop drains.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

  /// Lifetime counters (monotone; for `ewcsim cache-stats` style reporting).
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t executed = 0;
  };
  Stats stats() const;

  /// Process-wide default pool, sized to the hardware. Constructed on first
  /// use; never torn down before exit (avoids static-destruction races with
  /// user threads still holding work).
  static ThreadPool& shared();

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ewc::common
