// Strong physical-quantity types used throughout the library.
//
// The simulator mixes several unit domains (simulated seconds, joules, watts,
// bytes, shader cycles). Using `double` everywhere invites silent unit bugs
// (e.g. adding watts to joules), so each quantity is a distinct wrapper with
// only the physically meaningful operators defined:
//
//   Power * Duration -> Energy        Energy / Duration -> Power
//   Bytes / Bandwidth -> Duration     Cycles / Frequency -> Duration
//
// All wrappers are trivially copyable value types; arithmetic is constexpr.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace ewc::common {

namespace detail {

// CRTP base providing the operators every scalar quantity shares.
template <class Derived>
struct Quantity {
  double value = 0.0;

  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value(v) {}

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.value + b.value};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.value - b.value};
  }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.value * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{a.value * s};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.value / s};
  }
  // Ratio of two like quantities is a dimensionless double.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value / b.value;
  }
  friend constexpr auto operator<=>(Derived a, Derived b) {
    return a.value <=> b.value;
  }
  friend constexpr bool operator==(Derived a, Derived b) {
    return a.value == b.value;
  }
  Derived& operator+=(Derived o) {
    value += o.value;
    return static_cast<Derived&>(*this);
  }
  Derived& operator-=(Derived o) {
    value -= o.value;
    return static_cast<Derived&>(*this);
  }
};

}  // namespace detail

/// Simulated wall-clock time span, in seconds.
struct Duration : detail::Quantity<Duration> {
  using Quantity::Quantity;
  constexpr double seconds() const { return value; }
  constexpr double millis() const { return value * 1e3; }
  constexpr double micros() const { return value * 1e6; }
  static constexpr Duration from_seconds(double s) { return Duration{s}; }
  static constexpr Duration from_millis(double ms) { return Duration{ms * 1e-3}; }
  static constexpr Duration from_micros(double us) { return Duration{us * 1e-6}; }
  static constexpr Duration zero() { return Duration{0.0}; }
  static constexpr Duration infinity() {
    return Duration{std::numeric_limits<double>::infinity()};
  }
  constexpr bool is_finite() const { return std::isfinite(value); }
};

/// Energy, in joules.
struct Energy : detail::Quantity<Energy> {
  using Quantity::Quantity;
  constexpr double joules() const { return value; }
  constexpr double kilojoules() const { return value * 1e-3; }
  static constexpr Energy from_joules(double j) { return Energy{j}; }
  static constexpr Energy zero() { return Energy{0.0}; }
};

/// Power, in watts.
struct Power : detail::Quantity<Power> {
  using Quantity::Quantity;
  constexpr double watts() const { return value; }
  static constexpr Power from_watts(double w) { return Power{w}; }
  static constexpr Power zero() { return Power{0.0}; }
};

/// Data volume, in bytes (fractional bytes allowed inside the fluid model).
struct Bytes : detail::Quantity<Bytes> {
  using Quantity::Quantity;
  constexpr double bytes() const { return value; }
  constexpr double megabytes() const { return value / (1024.0 * 1024.0); }
  static constexpr Bytes from_bytes(double b) { return Bytes{b}; }
  static constexpr Bytes from_kib(double k) { return Bytes{k * 1024.0}; }
  static constexpr Bytes from_mib(double m) { return Bytes{m * 1024.0 * 1024.0}; }
  static constexpr Bytes zero() { return Bytes{0.0}; }
};

/// Data rate, in bytes / second.
struct Bandwidth : detail::Quantity<Bandwidth> {
  using Quantity::Quantity;
  constexpr double bytes_per_second() const { return value; }
  constexpr double gib_per_second() const { return value / (1024.0 * 1024.0 * 1024.0); }
  static constexpr Bandwidth from_bytes_per_second(double b) { return Bandwidth{b}; }
  static constexpr Bandwidth from_gb_per_second(double g) {
    return Bandwidth{g * 1e9};
  }
};

/// Processor cycles (fractional cycles allowed inside the fluid model).
struct Cycles : detail::Quantity<Cycles> {
  using Quantity::Quantity;
  constexpr double count() const { return value; }
  static constexpr Cycles from_count(double c) { return Cycles{c}; }
  static constexpr Cycles zero() { return Cycles{0.0}; }
};

/// Clock frequency, in hertz.
struct Frequency : detail::Quantity<Frequency> {
  using Quantity::Quantity;
  constexpr double hertz() const { return value; }
  static constexpr Frequency from_hertz(double h) { return Frequency{h}; }
  static constexpr Frequency from_ghz(double g) { return Frequency{g * 1e9}; }
};

/// Temperature delta above ambient, in kelvin.
struct TemperatureDelta : detail::Quantity<TemperatureDelta> {
  using Quantity::Quantity;
  constexpr double kelvin() const { return value; }
  static constexpr TemperatureDelta from_kelvin(double k) {
    return TemperatureDelta{k};
  }
  static constexpr TemperatureDelta zero() { return TemperatureDelta{0.0}; }
};

// ---- cross-quantity arithmetic ---------------------------------------------

constexpr Energy operator*(Power p, Duration t) {
  return Energy{p.watts() * t.seconds()};
}
constexpr Energy operator*(Duration t, Power p) { return p * t; }
constexpr Power operator/(Energy e, Duration t) {
  return Power{e.joules() / t.seconds()};
}
constexpr Duration operator/(Energy e, Power p) {
  return Duration{e.joules() / p.watts()};
}
constexpr Duration operator/(Bytes b, Bandwidth bw) {
  return Duration{b.bytes() / bw.bytes_per_second()};
}
constexpr Bytes operator*(Bandwidth bw, Duration t) {
  return Bytes{bw.bytes_per_second() * t.seconds()};
}
constexpr Duration operator/(Cycles c, Frequency f) {
  return Duration{c.count() / f.hertz()};
}
constexpr Cycles operator*(Frequency f, Duration t) {
  return Cycles{f.hertz() * t.seconds()};
}

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.seconds() << "s";
}
inline std::ostream& operator<<(std::ostream& os, Energy e) {
  return os << e.joules() << "J";
}
inline std::ostream& operator<<(std::ostream& os, Power p) {
  return os << p.watts() << "W";
}
inline std::ostream& operator<<(std::ostream& os, Bytes b) {
  return os << b.bytes() << "B";
}

}  // namespace ewc::common
