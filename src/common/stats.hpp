// Small statistics helpers shared by the model-validation benches and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ewc::common {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev(std::span<const double> xs);

/// p-th percentile (0..100) by linear interpolation on the sorted copy.
double percentile(std::span<const double> xs, double p);

/// |predicted - measured| / |measured|. A zero measurement cannot anchor a
/// relative error: the result is 0 only when the prediction is also 0, and
/// NaN otherwise (so a broken model can never report perfect accuracy).
double relative_error(double predicted, double measured);

/// Paired relative-error reduction that accounts for undefined pairs
/// (measured == 0 with a nonzero prediction) instead of silently absorbing
/// them into the average.
struct RelativeErrorSummary {
  double mean = 0.0;       ///< over the defined pairs only
  double max = 0.0;        ///< over the defined pairs only
  std::size_t counted = 0; ///< pairs with a defined relative error
  std::size_t skipped = 0; ///< undefined pairs excluded from mean/max
};
RelativeErrorSummary relative_error_summary(std::span<const double> predicted,
                                            std::span<const double> measured);

/// Mean of relative errors over paired vectors (must be equal length).
/// Undefined pairs (see relative_error) are skipped; use
/// relative_error_summary to see how many were.
double mean_relative_error(std::span<const double> predicted,
                           std::span<const double> measured);

/// Max of relative errors over paired vectors (must be equal length),
/// skipping undefined pairs like mean_relative_error.
double max_relative_error(std::span<const double> predicted,
                          std::span<const double> measured);

/// Pearson correlation coefficient; 0 if either side is constant.
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Streaming accumulator for mean/min/max/variance (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ewc::common
