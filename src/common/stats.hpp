// Small statistics helpers shared by the model-validation benches and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ewc::common {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 for n < 2.
double stddev(std::span<const double> xs);

/// p-th percentile (0..100) by linear interpolation on the sorted copy.
double percentile(std::span<const double> xs, double p);

/// |predicted - measured| / measured. Returns 0 when measured == 0.
double relative_error(double predicted, double measured);

/// Mean of relative errors over paired vectors (must be equal length).
double mean_relative_error(std::span<const double> predicted,
                           std::span<const double> measured);

/// Max of relative errors over paired vectors (must be equal length).
double max_relative_error(std::span<const double> predicted,
                          std::span<const double> measured);

/// Pearson correlation coefficient; 0 if either side is constant.
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Streaming accumulator for mean/min/max/variance (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ewc::common
