// Minimal CSV writer for exporting simulator timelines and bench series.
//
// RFC-4180-style quoting: fields containing commas, quotes or newlines are
// quoted with embedded quotes doubled. Rows must match the header width.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ewc::common {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// @throws std::invalid_argument on width mismatch.
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows.
  void add_numeric_row(const std::vector<double>& values, int precision = 6);

  std::string to_string() const;
  void write_to(std::ostream& os) const;
  /// @throws std::runtime_error if the file cannot be opened.
  void write_file(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

  static std::string escape(const std::string& field);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ewc::common
