// Datacenter scenario: many users stream requests to known applications
// (the paper's target environment, Section I).
//
// A Poisson trace of mixed enterprise requests arrives; the backend batches
// them at the paper's threshold (10 x #GPUs), asks the decision engine where
// each batch should run, and executes. The example reports per-batch
// decisions and the end-to-end energy against an all-CPU and an
// all-serial-GPU deployment.
//
// Run:  ./build/examples/datacenter_consolidation
#include <iostream>
#include <map>

#include "common/table.hpp"
#include "consolidate/runner.hpp"
#include "gpusim/engine.hpp"
#include "power/trainer.hpp"
#include "trace/trace.hpp"
#include "workloads/paper_configs.hpp"
#include "workloads/rodinia_like.hpp"

int main() {
  using namespace ewc;

  gpusim::FluidEngine engine;
  power::ModelTrainer trainer(engine);
  const auto training = trainer.train(workloads::rodinia_training_kernels());
  consolidate::ExperimentRunner runner(engine, training.model);

  // The application catalogue users can hit, with popularities.
  std::map<std::string, workloads::InstanceSpec> catalogue;
  for (auto spec : {workloads::encryption_12k(), workloads::sorting_6k(),
                    workloads::t56_search(), workloads::t56_blackscholes(),
                    workloads::t78_montecarlo()}) {
    catalogue.emplace(spec.name, std::move(spec));
  }
  std::vector<trace::MixEntry> mix{{"encryption_12k", 4.0},
                                   {"sorting_6k", 3.0},
                                   {"search", 1.5},
                                   {"blackscholes", 1.0},
                                   {"montecarlo", 0.5}};

  // 60 requests at 2 req/s; batches of 10 (the paper's threshold for 1 GPU).
  trace::PoissonTraceGenerator gen(mix, 2.0, 2026);
  const auto requests = gen.generate(60);
  const auto batches = trace::batch_workloads(requests, 10);
  std::cout << requests.size() << " requests over "
            << requests.back().arrival_seconds << " s -> " << batches.size()
            << " batches of 10\n\n";

  common::TextTable t({"batch", "workload mix", "decision", "time (s)",
                       "energy (J)", "CPU-only (J)", "serial-GPU (J)"});
  double total_dyn = 0.0, total_cpu = 0.0, total_serial = 0.0;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    // Count instances per workload in this batch.
    std::map<std::string, int> counts;
    for (const auto& w : batches[b]) counts[w] += 1;
    std::vector<consolidate::WorkloadMix> wmix;
    std::string label;
    for (const auto& [name, count] : counts) {
      wmix.push_back({catalogue.at(name), count});
      label += std::to_string(count) + "x" + name.substr(0, 4) + " ";
    }

    std::vector<consolidate::BatchReport> reports;
    const auto dyn = runner.run_dynamic(wmix, &reports);
    const auto cpu = runner.run_cpu(wmix);
    const auto serial = runner.run_serial(wmix);
    total_dyn += dyn.energy.joules();
    total_cpu += cpu.energy.joules();
    total_serial += serial.energy.joules();

    std::string decision = "individual";
    if (!reports.empty() && reports.front().decision) {
      decision =
          consolidate::alternative_name(reports.front().decision->chosen);
    }
    t.add_row({std::to_string(b), label, decision,
               common::TextTable::num(dyn.time.seconds(), 1),
               common::TextTable::num(dyn.energy.joules(), 0),
               common::TextTable::num(cpu.energy.joules(), 0),
               common::TextTable::num(serial.energy.joules(), 0)});
  }
  std::cout << t << "\n";
  std::cout << "total energy: framework " << common::TextTable::num(total_dyn, 0)
            << " J vs CPU-only " << common::TextTable::num(total_cpu, 0)
            << " J (" << common::TextTable::num(total_cpu / total_dyn, 1)
            << "x) vs serial-GPU " << common::TextTable::num(total_serial, 0)
            << " J (" << common::TextTable::num(total_serial / total_dyn, 1)
            << "x)\n";
  return 0;
}
