// The wcu driver API end to end: load a PTX module the way cuModuleLoadData
// would, resolve a kernel, marshal parameters, and launch grids on the
// simulated device — the low-level surface the consolidation backend (and
// any non-runtime client) builds on.
//
// Run:  ./build/examples/driver_api
#include <cstdint>
#include <iostream>
#include <vector>

#include "driver/driver.hpp"
#include "ptx/samples.hpp"

int main() {
  using namespace ewc;
  gpusim::FluidEngine engine;
  driver::Driver drv(engine);

  // cuModuleLoadData
  driver::WcuModule module;
  if (drv.wcuModuleLoadData(&module, ptx::samples::sha256()) !=
      cudart::wcudaError::kSuccess) {
    std::cerr << "module load failed\n";
    return 1;
  }
  std::cout << "loaded module " << module.id << " from PTX ("
            << drv.loaded_modules() << " module(s) resident)\n";

  // cuModuleGetFunction
  driver::WcuFunction hash;
  if (drv.wcuModuleGetFunction(&hash, module, "sha256") !=
      cudart::wcudaError::kSuccess) {
    std::cerr << "function lookup failed\n";
    return 1;
  }

  // cuMemAlloc + cuMemcpyHtoD
  const std::size_t bytes = 1 << 20;
  void* dmsgs = nullptr;
  drv.wcuMemAlloc(&dmsgs, bytes);
  std::vector<std::uint8_t> messages(bytes, 0x42);
  drv.wcuMemcpyHtoD(dmsgs, messages.data(), bytes);

  // cuParamSet* + cuFuncSetBlockShape + cuLaunchGrid
  drv.wcuParamSetSize(hash, 20);
  std::uint64_t dptr_val = reinterpret_cast<std::uint64_t>(dmsgs);
  std::uint32_t nblocks = 64;
  drv.wcuParamSetv(hash, 0, &dptr_val, sizeof dptr_val);
  drv.wcuParamSetv(hash, 16, &nblocks, sizeof nblocks);
  drv.wcuFuncSetBlockShape(hash, 256, 1, 1);

  for (int grid : {16, 32, 64}) {
    if (drv.wcuLaunchGrid(hash, grid, 1) != cudart::wcudaError::kSuccess) {
      std::cerr << "launch failed\n";
      return 1;
    }
    std::cout << "launched sha256 over " << grid << " blocks; cumulative "
              << drv.stats().kernel_time.seconds() << " s kernel, "
              << drv.stats().system_energy.joules() << " J\n";
  }

  // cuMemcpyDtoH round trip.
  std::vector<std::uint8_t> out(bytes);
  drv.wcuMemcpyDtoH(out.data(), dmsgs, bytes);
  std::cout << "data round trip " << (out == messages ? "intact" : "CORRUPT")
            << "; " << drv.launches() << " launches total\n";
  drv.wcuMemFree(dmsgs);
  drv.wcuModuleUnload(module);
  return 0;
}
