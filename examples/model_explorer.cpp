// Model explorer: poke the Section V performance model interactively-ish.
//
// Sweeps a synthetic kernel across the compute-bound -> memory-bound
// spectrum and across grid sizes, printing predicted vs simulated times,
// MWP/CWP diagnostics and the type-1/type-2 classification — a worked tour
// of how the consolidation decision sees a kernel.
//
// Run:  ./build/examples/model_explorer
#include <iostream>

#include "common/table.hpp"
#include "gpusim/engine.hpp"
#include "perf/consolidation_model.hpp"

int main() {
  using namespace ewc;
  gpusim::FluidEngine engine;
  perf::AnalyticModel model(engine.device());
  perf::ConsolidationModel consolidation(engine.device());

  std::cout << "== sweep 1: memory-instruction share (30 blocks x 256 thr) ==\n";
  common::TextTable t1({"mem insts/thread", "MWP", "CWP", "bound",
                        "predicted (s)", "simulated (s)"});
  for (double mem : {0.0, 100.0, 500.0, 2000.0, 8000.0, 32000.0}) {
    gpusim::KernelDesc k;
    k.name = "sweep";
    k.num_blocks = 30;
    k.threads_per_block = 256;
    k.mix.fp_insts = 2.0e5;
    k.mix.int_insts = 5.0e4;
    k.mix.coalesced_mem_insts = mem;
    const auto pred = model.predict(k);
    gpusim::LaunchPlan plan;
    plan.instances.push_back(gpusim::KernelInstance{k, 0, ""});
    const auto run = engine.run(plan);
    t1.add_row({common::TextTable::num(mem, 0),
                common::TextTable::num(pred.parallelism.mwp, 1),
                common::TextTable::num(pred.parallelism.cwp, 1),
                pred.parallelism.memory_bound ? "memory" : "compute",
                common::TextTable::num(pred.kernel_time.seconds(), 4),
                common::TextTable::num(run.kernel_time.seconds(), 4)});
  }
  std::cout << t1 << "\n";

  std::cout << "== sweep 2: grid size (waves & classification) ==\n";
  common::TextTable t2({"blocks", "waves", "type if consolidated with itself",
                        "predicted (s)", "simulated (s)"});
  for (int blocks : {5, 15, 30, 60, 120, 300}) {
    gpusim::KernelDesc k;
    k.name = "grid";
    k.num_blocks = blocks;
    k.threads_per_block = 256;
    k.mix.fp_insts = 1.0e5;
    k.mix.coalesced_mem_insts = 1.0e3;
    const auto pred = model.predict(k);
    gpusim::LaunchPlan pair;
    pair.instances.push_back(gpusim::KernelInstance{k, 0, ""});
    pair.instances.push_back(gpusim::KernelInstance{k, 1, ""});
    gpusim::LaunchPlan single;
    single.instances.push_back(gpusim::KernelInstance{k, 0, ""});
    const auto run = engine.run(single);
    t2.add_row(
        {std::to_string(blocks), std::to_string(pred.waves),
         consolidation.classify(pair) == perf::ConsolidationType::kType1
             ? "type-1"
             : "type-2",
         common::TextTable::num(pred.kernel_time.seconds(), 4),
         common::TextTable::num(run.kernel_time.seconds(), 4)});
  }
  std::cout << t2 << "\n";

  std::cout << "== sweep 3: coalescing quality (DRAM efficiency) ==\n";
  common::TextTable t3({"coalesced fraction", "DRAM efficiency",
                        "predicted (s)", "simulated (s)"});
  for (double frac : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    gpusim::KernelDesc k;
    k.name = "coal";
    k.num_blocks = 60;
    k.threads_per_block = 256;
    k.mix.int_insts = 1.0e4;
    k.mix.coalesced_mem_insts = 4.0e3 * frac;
    k.mix.uncoalesced_mem_insts = 4.0e3 * (1.0 - frac) / 8.0;  // similar bytes
    const auto pred = model.predict(k);
    gpusim::LaunchPlan plan;
    plan.instances.push_back(gpusim::KernelInstance{k, 0, ""});
    const auto run = engine.run(plan);
    t3.add_row({common::TextTable::num(k.coalesced_fraction(), 2),
                common::TextTable::num(k.dram_efficiency(engine.device()), 2),
                common::TextTable::num(pred.kernel_time.seconds(), 4),
                common::TextTable::num(run.kernel_time.seconds(), 4)});
  }
  std::cout << t3 << "\n";
  return 0;
}
