// Quickstart: the library in ~80 lines.
//
// 1. Build the simulated Tesla C1060 node.
// 2. Train the paper's GPU power model on the Rodinia-like kernels.
// 3. Take 6 encryption requests from 6 "users" and compare the four
//    execution setups (CPU / serial GPU / manual / dynamic framework).
//
// Run:  ./build/examples/quickstart
#include <iostream>

#include "common/table.hpp"
#include "consolidate/runner.hpp"
#include "gpusim/engine.hpp"
#include "power/trainer.hpp"
#include "workloads/paper_configs.hpp"
#include "workloads/rodinia_like.hpp"

int main() {
  using namespace ewc;

  // The simulated heterogeneous node: dual Xeon E5520 + Tesla C1060.
  gpusim::FluidEngine engine;

  // Train the Section VI power model (10 training kernels, 1 Hz meter).
  power::ModelTrainer trainer(engine);
  const power::TrainingReport training =
      trainer.train(workloads::rodinia_training_kernels());
  std::cout << "power model trained: R^2 = " << training.r_squared << "\n\n";

  // Six users each submit one 12 KB AES encryption request.
  const workloads::InstanceSpec spec = workloads::encryption_12k();
  std::vector<consolidate::WorkloadMix> mix{{spec, 6}};

  consolidate::ExperimentRunner runner(engine, training.model);
  const consolidate::ComparisonResult r = runner.compare(mix);

  common::TextTable table({"setup", "time (s)", "energy (J)"});
  auto row = [&](const char* name, const consolidate::SetupResult& s) {
    table.add_row({name, common::TextTable::num(s.time.seconds()),
                   common::TextTable::num(s.energy.joules())});
  };
  row("CPU (8 cores)", r.cpu);
  row("GPU serial", r.serial_gpu);
  row("GPU manual consolidation", r.manual);
  row("GPU dynamic framework", r.dynamic_framework);
  std::cout << "6 x encryption (12 KB):\n" << table << "\n";

  if (!r.dynamic_reports.empty() && r.dynamic_reports.front().decision) {
    const auto& d = *r.dynamic_reports.front().decision;
    std::cout << "decision engine chose: "
              << consolidate::alternative_name(d.chosen) << "\n";
    for (const auto& e : d.estimates) {
      std::cout << "  " << consolidate::alternative_name(e.which)
                << ": predicted " << e.time.seconds() << " s, "
                << e.energy.joules() << " J"
                << (e.feasible ? "" : " (infeasible)") << "\n";
    }
  }
  return 0;
}
