// The PTX pipeline end to end (paper Sections IV & VI):
//
//   1. parse the BlackScholes and search PTX the "CUDA compiler" produced;
//   2. statically analyze them into instruction mixes (Section VI's
//      "analyzing PTX code");
//   3. register the kernels with the wcuda runtime and launch one through
//      the real API onto the simulator;
//   4. run the source-to-source template compiler (Section IV's automation)
//      to fuse them into one consolidated template, print the emitted PTX
//      dispatch prologue, and verify the merged kernel re-analyzes to the
//      sum of its parts.
//
// Run:  ./build/examples/ptx_pipeline
#include <iostream>

#include "common/table.hpp"
#include "cudart/runtime.hpp"
#include "gpusim/engine.hpp"
#include "ptx/analyzer.hpp"
#include "ptx/loader.hpp"
#include "ptx/samples.hpp"
#include "ptx/template_compiler.hpp"

int main() {
  using namespace ewc;

  // ---- 1 & 2: parse + analyze ----
  std::string merged_src;
  merged_src += ptx::samples::blackscholes();
  merged_src += ptx::samples::search();
  const ptx::PtxModule module = ptx::parse_module(merged_src);

  common::TextTable mixes({"kernel", "fp", "int", "sfu", "coal", "uncoal",
                           "shared", "const", "sync", "regs"});
  for (const auto& k : module.kernels) {
    const auto a = ptx::analyze_kernel(module, k);
    const auto& m = a.mix;
    auto n = [](double v) { return common::TextTable::num(v, 0); };
    mixes.add_row({k.name, n(m.fp_insts), n(m.int_insts), n(m.sfu_insts),
                   n(m.coalesced_mem_insts), n(m.uncoalesced_mem_insts),
                   n(m.shared_accesses), n(m.const_accesses), n(m.sync_insts),
                   std::to_string(a.registers_per_thread)});
  }
  std::cout << "per-thread instruction mixes extracted from PTX:\n"
            << mixes << "\n";

  // ---- 3: load into the runtime and launch ----
  cudart::KernelRegistry registry;
  const auto names = ptx::load_module(registry, merged_src);
  std::cout << "registered from PTX:";
  for (const auto& n : names) std::cout << " " << n;
  std::cout << "\n";

  gpusim::FluidEngine engine;
  cudart::Runtime runtime(engine, &registry);
  cudart::Context ctx("ptx-user", 64 << 20);
  runtime.wcudaConfigureCall(ctx, {10, 1, 1}, {256, 1, 1}, 0);
  std::uint64_t dummy = 0;
  runtime.wcudaSetupArgument(ctx, &dummy, sizeof dummy, 0);
  if (runtime.wcudaLaunch(ctx, "search") != cudart::wcudaError::kSuccess) {
    std::cerr << "launch failed\n";
    return 1;
  }
  std::cout << "search (10 blocks) simulated: "
            << runtime.direct_stats().kernel_time.seconds() << " s kernel, "
            << runtime.direct_stats().system_energy.joules() << " J\n\n";

  // ---- 4: source-to-source template generation ----
  const auto tmpl = ptx::compile_template(
      module, {{"search", 10}, {"blackscholes", 20}}, "search_bs_template");
  std::cout << "compiled template '" << tmpl.name << "' covering "
            << tmpl.total_blocks << " blocks; dispatch prologue:\n";
  // Print the emitted PTX up to the first section body.
  const auto cut = tmpl.ptx.find("$section_k0");
  std::cout << tmpl.ptx.substr(0, cut) << " $section_k0: ...\n\n";

  const auto merged_mod = ptx::parse_module(tmpl.ptx);
  const auto merged = ptx::analyze_kernel(merged_mod, tmpl.name);
  const auto s = ptx::analyze_kernel(module, "search");
  const auto b = ptx::analyze_kernel(module, "blackscholes");
  std::cout << "merged-template analysis vs sum of constituents:\n"
            << "  sfu:  " << merged.mix.sfu_insts << " vs "
            << s.mix.sfu_insts + b.mix.sfu_insts << "\n"
            << "  coal: " << merged.mix.coalesced_mem_insts << " vs "
            << s.mix.coalesced_mem_insts + b.mix.coalesced_mem_insts << "\n";
  return 0;
}
