// Power-model training walkthrough (paper Section VI).
//
// Shows the whole Eq. 10/11 pipeline: idle measurement, training runs with
// the simulated WattsUp meter, the fitted coefficients a_i and lambda, the
// thermal decomposition, and a validation prediction on a consolidated
// workload the trainer never saw.
//
// Run:  ./build/examples/power_training
#include <iostream>

#include "common/table.hpp"
#include "gpusim/engine.hpp"
#include "perf/consolidation_model.hpp"
#include "power/meter.hpp"
#include "power/trainer.hpp"
#include "workloads/paper_configs.hpp"
#include "workloads/rodinia_like.hpp"

int main() {
  using namespace ewc;
  gpusim::FluidEngine engine;

  power::ModelTrainer trainer(engine);
  const auto report = trainer.train(workloads::rodinia_training_kernels());

  std::cout << "measured idle power: " << report.measured_idle.watts()
            << " W (includes GPU static power)\n";
  std::cout << "regression R^2: " << report.r_squared << "\n\n";

  std::cout << "fitted Eq. 11 coefficients (W per event/cycle/SM):\n";
  common::TextTable coef({"component", "a_i"});
  for (std::size_t i = 0; i < power::kNumComponents; ++i) {
    coef.add_row({power::kComponentNames[i],
                  common::TextTable::num(report.model.fit().coefficients[i], 2)});
  }
  coef.add_row({"lambda (intercept)",
                common::TextTable::num(report.model.fit().intercept, 2)});
  std::cout << coef << "\n";

  std::cout << "thermal fit: dT_ss = "
            << report.model.thermal().kelvin_per_dyn_watt
            << " K/W, P_T = " << report.model.thermal().watts_per_kelvin
            << " W/K\n\n";

  std::cout << "training samples (first 10 of " << report.samples.size()
            << "):\n";
  common::TextTable samples({"kernel", "measured (W)", "predicted (W)", "dT (K)"});
  for (std::size_t i = 0; i < 10 && i < report.samples.size(); ++i) {
    const auto& s = report.samples[i];
    samples.add_row(
        {s.kernel, common::TextTable::num(s.measured_watts_above_idle, 1),
         common::TextTable::num(
             report.model.gpu_power_from_rates(s.rates).watts(), 1),
         common::TextTable::num(s.measured_temp_delta, 1)});
  }
  std::cout << samples << "\n";

  // Validation on an unseen consolidated workload.
  const auto e = workloads::t78_encryption();
  const auto m = workloads::t78_montecarlo();
  gpusim::LaunchPlan plan;
  plan.instances.push_back(gpusim::KernelInstance{e.gpu, 0, "userE"});
  plan.instances.push_back(gpusim::KernelInstance{m.gpu, 1, "userM"});

  perf::ConsolidationModel perf_model(engine.device());
  const auto timing = perf_model.predict(plan);
  const auto pw = report.model.predict(engine.device(), plan, timing);
  const auto decomposed = report.model.decompose(pw.rates);

  const auto run = engine.run(plan);
  power::PowerMeter meter;
  const double measured =
      meter.average_power(run, power::MeterWindow::kKernelOnly).watts();

  std::cout << "validation (1E+1M consolidation, never seen in training):\n"
            << "  predicted GPU power: " << pw.gpu_power.watts()
            << " W above idle (P_dyn " << decomposed.dynamic.watts()
            << " + P_T " << decomposed.thermal.watts() << ")\n"
            << "  predicted system avg: " << pw.avg_system_power.watts()
            << " W, energy " << pw.system_energy.joules() << " J\n"
            << "  meter-measured avg:   " << measured << " W, total "
            << run.system_energy.joules() << " J\n";
  return 0;
}
