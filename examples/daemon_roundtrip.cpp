// The ewcd daemon end to end, inside one process: start the consolidation
// backend behind a UNIX socket server, connect two simulated user processes
// through ClientConnection + RemoteFrontend, launch a small mix, and show
// that the socket-served completions carry the same simulated results the
// in-process frontend would have produced (the framed wire protocol encodes
// doubles bit-exactly).
//
// In production use the same pieces run as separate processes:
//   ewcsim serve  --socket /tmp/ewcd.sock --workload encryption_12k=2
//   ewcsim client --socket /tmp/ewcd.sock --workload encryption_12k=2
//
// Run:  ./build/examples/daemon_roundtrip
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "consolidate/backend.hpp"
#include "cudart/runtime.hpp"
#include "power/trainer.hpp"
#include "server/client.hpp"
#include "server/remote_frontend.hpp"
#include "server/server.hpp"
#include "workloads/paper_configs.hpp"
#include "workloads/rodinia_like.hpp"

int main() {
  using namespace ewc;

  const auto spec = workloads::encryption_12k();
  const int instances = 2;

  // ---- daemon side: backend + socket server ----
  gpusim::FluidEngine engine;
  power::ModelTrainer trainer(engine);
  const auto training = trainer.train(workloads::rodinia_training_kernels());

  consolidate::BackendOptions options;
  options.batch_threshold = instances;  // one consolidated batch
  auto templates = consolidate::TemplateRegistry::paper_defaults();
  consolidate::Backend backend(engine, training.model, std::move(templates),
                               options);
  backend.set_cpu_profile(spec.gpu.name, spec.cpu);

  server::ServerOptions sopt;
  sopt.socket_path = "/tmp/ewcd_example.sock";
  ::remove(sopt.socket_path.c_str());
  server::Server server(backend, sopt);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "cannot start ewcd: " << error << "\n";
    return 1;
  }
  std::cout << "ewcd listening on " << sopt.socket_path << "\n";

  // ---- client side: one connection, one RemoteFrontend per app thread ----
  auto conn = server::ClientConnection::connect(
      sopt.socket_path, "example", common::Duration::from_seconds(5.0),
      &error);
  if (conn == nullptr) {
    std::cerr << "cannot connect: " << error << "\n";
    return 1;
  }

  cudart::KernelRegistry registry;
  const gpusim::KernelDesc desc = spec.gpu;
  registry.register_kernel(
      "spec:" + spec.name,
      [desc](const cudart::LaunchConfig&, std::span<const std::byte>) {
        return desc;
      });
  gpusim::FluidEngine client_engine;  // only the direct path would use it
  cudart::Runtime runtime(client_engine, &registry);

  std::vector<consolidate::CompletionReply> replies(instances);
  std::vector<std::thread> apps;
  for (int slot = 0; slot < instances; ++slot) {
    apps.emplace_back([&, slot] {
      char suffix[16];
      std::snprintf(suffix, sizeof suffix, "#%04d", slot);
      cudart::Context ctx(spec.name + suffix, 512u << 20);
      server::RemoteFrontend frontend(*conn, ctx.owner(), &registry);
      ctx.set_interceptor(&frontend);

      // The usual five-call CUDA application shape.
      const std::size_t bytes = 4096;
      std::vector<std::uint8_t> host(bytes, 0xAB);
      void* dev = nullptr;
      runtime.wcudaMalloc(ctx, &dev, bytes);
      runtime.wcudaMemcpy(ctx, dev, host.data(), bytes,
                          cudart::MemcpyKind::kHostToDevice);
      runtime.wcudaConfigureCall(
          ctx, cudart::Dim3{static_cast<unsigned>(spec.gpu.num_blocks), 1, 1},
          cudart::Dim3{static_cast<unsigned>(spec.gpu.threads_per_block), 1, 1},
          0);
      const std::uint64_t token = static_cast<std::uint64_t>(slot);
      runtime.wcudaSetupArgument(ctx, &token, sizeof token, 0);
      runtime.wcudaLaunch(ctx, "spec:" + spec.name);
      replies[static_cast<std::size_t>(slot)] = frontend.last_completion();
      runtime.wcudaFree(ctx, dev);
    });
  }
  for (auto& t : apps) t.join();

  for (int slot = 0; slot < instances; ++slot) {
    const auto& r = replies[static_cast<std::size_t>(slot)];
    std::cout << "instance " << slot << ": "
              << (r.ok ? "ok" : "FAILED: " + r.error)
              << ", finish " << r.finish_time.seconds() << " s, where "
              << static_cast<int>(r.where) << "\n";
  }
  for (const auto& report : backend.reports()) {
    std::cout << "batch: " << report.num_instances << " instances, template "
              << (report.template_found ? report.template_name : "(none)")
              << ", total " << report.total_time.seconds() << " s, energy "
              << report.energy.joules() << " J\n";
  }

  conn->request_shutdown();  // admin path: ask the daemon to drain
  server.wait();
  std::cout << "ewcd drained\n";
  return 0;
}
