// Figure 4: execution-time prediction for TYPE-2 consolidated workloads
// (more than one thread block per SM) — the paper's two scenarios plus
// further type-2 mixes. Paper: prediction error below 12%.
#include "bench/bench_common.hpp"

#include "common/stats.hpp"
#include "perf/consolidation_model.hpp"

int main(int argc, char** argv) {
  using namespace ewc;
  bench::Harness h;
  perf::ConsolidationModel model(h.engine.device());

  bench::header("Figure 4: type-2 consolidation time prediction",
                "prediction error less than 12%");

  const auto s1mc = workloads::scenario1_montecarlo();
  const auto s1e = workloads::scenario1_encryption();
  const auto s2bs = workloads::scenario2_blackscholes();
  const auto s2s = workloads::scenario2_search();
  const auto e = workloads::t78_encryption();
  const auto m = workloads::t78_montecarlo();
  const auto enc = workloads::encryption_12k();

  struct Case {
    std::string label;
    std::vector<std::pair<const workloads::InstanceSpec*, int>> mix;
  };
  std::vector<Case> cases = {
      {"scenario1: MC+enc", {{&s1mc, 1}, {&s1e, 1}}},
      {"scenario2: BS+search", {{&s2bs, 1}, {&s2s, 1}}},
      {"2E+1M", {{&e, 2}, {&m, 1}}},
      {"1E+20M", {{&e, 1}, {&m, 20}}},
      {"12 x enc(12K)", {{&enc, 12}}},
      {"2 x scenario2-BS", {{&s2bs, 2}}},
  };

  common::TextTable t({"consolidation", "blocks", "critical SM blocks",
                       "measured (s)", "predicted (s)", "error"});
  std::vector<double> pred, meas;
  for (const auto& c : cases) {
    gpusim::LaunchPlan plan;
    int id = 0;
    for (const auto& [spec, count] : c.mix) {
      for (int i = 0; i < count; ++i) {
        plan.instances.push_back(gpusim::KernelInstance{spec->gpu, id++, ""});
      }
    }
    if (model.classify(plan) != perf::ConsolidationType::kType2) {
      std::cout << "skipping " << c.label << ": not type 2\n";
      continue;
    }
    const auto run = h.engine.run(plan);
    const auto p = model.predict(plan);
    pred.push_back(p.total_time.seconds());
    meas.push_back(run.total_time.seconds());
    t.add_row({c.label, std::to_string(plan.total_blocks()),
               std::to_string(p.critical_sm_blocks.size()),
               bench::fmt(run.total_time.seconds(), 2),
               bench::fmt(p.total_time.seconds(), 2),
               bench::fmt(100.0 * common::relative_error(
                              p.total_time.seconds(), run.total_time.seconds()),
                          1) + "%"});
  }
  std::cout << t << "\nmean error: "
            << bench::fmt(100.0 * common::mean_relative_error(pred, meas), 1)
            << "%  max error: "
            << bench::fmt(100.0 * common::max_relative_error(pred, meas), 1)
            << "%  (paper bound: 12%)\n";
  ewc::bench::write_observability_json(argc, argv, "bench_figure4");
  return 0;
}
