// Figure 7: multiple encryption (12 KB) instances under the four setups:
// CPU, serial GPU, manual consolidation, dynamic framework.
// Paper: up to 29% energy savings and 68% time savings vs CPU; overheads
// become overwhelming beyond ~9 instances.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ewc;
  bench::Harness h;

  bench::header("Figure 7: encryption instances, four setups",
                "<=29% energy / <=68% time savings vs CPU; overheads "
                "overwhelm past ~9 instances");

  const auto spec = workloads::encryption_12k();
  common::TextTable t({"n", "CPU t(s)", "serial t(s)", "manual t(s)",
                       "dynamic t(s)", "CPU E(J)", "serial E(J)",
                       "manual E(J)", "dynamic E(J)"});
  for (int n : {1, 2, 3, 5, 7, 9, 10, 12}) {
    std::vector<consolidate::WorkloadMix> mix{{spec, n}};
    const auto r = h.runner.compare(mix);
    t.add_row({std::to_string(n), bench::fmt(r.cpu.time.seconds(), 2),
               bench::fmt(r.serial_gpu.time.seconds(), 2),
               bench::fmt(r.manual.time.seconds(), 2),
               bench::fmt(r.dynamic_framework.time.seconds(), 2),
               bench::fmt(r.cpu.energy.joules(), 0),
               bench::fmt(r.serial_gpu.energy.joules(), 0),
               bench::fmt(r.manual.energy.joules(), 0),
               bench::fmt(r.dynamic_framework.energy.joules(), 0)});
  }
  std::cout << t << "\n";

  // Where does the dynamic framework stop beating the CPU? (below ~3
  // instances the decision engine routes the batch to the CPU itself, so the
  // scan starts where consolidation is actually chosen)
  for (int n = 3; n <= 24; ++n) {
    std::vector<consolidate::WorkloadMix> mix{{spec, n}};
    const auto cpu = h.runner.run_cpu(mix);
    const auto dyn = h.runner.run_dynamic(mix);
    if (dyn.time.seconds() >= cpu.time.seconds()) {
      std::cout << "dynamic consolidation stops paying off at n = " << n
                << " (paper: ~9)\n";
      ewc::bench::write_observability_json(argc, argv, "bench_figure7");
      return 0;
    }
  }
  std::cout << "dynamic consolidation still beats the CPU at n = 24\n";
  ewc::bench::write_observability_json(argc, argv, "bench_figure7");
  return 0;
}
