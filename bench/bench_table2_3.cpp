// Tables 2 & 3: the two motivating scenarios (Section III).
//   Scenario 1 (Table 2): MonteCarlo (45 blk, memory-bound variant) +
//     encryption (15 blk) — consolidation is HARMFUL.
//   Scenario 2 (Table 3): BlackScholes (45 blk) + search (15 blk) —
//     consolidation is BENEFICIAL.
#include "bench/bench_common.hpp"

#include "power/meter.hpp"

namespace {

using namespace ewc;

void run_scenario(bench::Harness& h, const char* title,
                  const workloads::InstanceSpec& a,
                  const workloads::InstanceSpec& b, const double paper[3][2]) {
  common::TextTable t({"workload", "time (s)", "energy (kJ)",
                       "paper t (s)", "paper E (kJ)"});
  auto run_one = [&](const workloads::InstanceSpec& s) {
    gpusim::LaunchPlan p;
    p.instances.push_back(gpusim::KernelInstance{s.gpu, 0, "user"});
    return h.engine.run(p);
  };
  const auto ra = run_one(a);
  const auto rb = run_one(b);
  gpusim::LaunchPlan both;
  both.instances.push_back(gpusim::KernelInstance{a.gpu, 0, "user-a"});
  both.instances.push_back(gpusim::KernelInstance{b.gpu, 1, "user-b"});
  const auto rab = h.engine.run(both);

  auto row = [&](const std::string& name, const gpusim::RunResult& r,
                 const double p[2]) {
    t.add_row({name, bench::fmt(r.total_time.seconds(), 1),
               bench::fmt(r.system_energy.kilojoules(), 2), bench::fmt(p[0], 1),
               bench::fmt(p[1], 2)});
  };
  row("single " + a.name, ra, paper[0]);
  row("single " + b.name, rb, paper[1]);
  row(a.name + "+" + b.name, rab, paper[2]);
  std::cout << title << "\n" << t;
  const double sum_t = ra.total_time.seconds() + rb.total_time.seconds();
  const double sum_e =
      ra.system_energy.kilojoules() + rb.system_energy.kilojoules();
  std::cout << "consolidated vs serial sum: time " << bench::fmt(sum_t, 1)
            << " -> " << bench::fmt(rab.total_time.seconds(), 1) << " s, energy "
            << bench::fmt(sum_e, 2) << " -> "
            << bench::fmt(rab.system_energy.kilojoules(), 2) << " kJ ("
            << (rab.total_time.seconds() > sum_t ? "HARMFUL" : "beneficial")
            << ")\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h;
  bench::header("Tables 2 & 3: when consolidation helps and when it hurts",
                "Table 2: 62.4/19.5 -> 84.6 s (harmful). "
                "Table 3: 26.4/49.2 -> 58.7 s (beneficial)");

  const double paper2[3][2] = {{62.4, 25.6}, {19.5, 7.03}, {84.6, 33.5}};
  run_scenario(h, "Scenario 1 (Table 2): MC + encryption",
               workloads::scenario1_montecarlo(),
               workloads::scenario1_encryption(), paper2);

  const double paper3[3][2] = {{26.4, 12.2}, {49.2, 19.2}, {58.7, 26.7}};
  run_scenario(h, "Scenario 2 (Table 3): BlackScholes + search",
               workloads::scenario2_blackscholes(),
               workloads::scenario2_search(), paper3);
  ewc::bench::write_observability_json(argc, argv, "bench_table2_3");
  return 0;
}
