// Extension E11: device-model sensitivity analysis.
//
// The qualitative conclusions (Scenario 1 harmful, Scenario 2 beneficial,
// homogeneous encryption consolidation ~free) must not hinge on the exact
// calibrated constants. This bench perturbs the key device parameters —
// DRAM bandwidth, memory latency, and the kernel-mixing penalty — by ±20%
// (penalty: 0 to 2x) and reports whether each conclusion survives.
#include "bench/bench_common.hpp"

#include "common/thread_pool.hpp"

namespace {

using namespace ewc;

struct Verdicts {
  bool scenario1_harmful = false;
  bool scenario2_beneficial = false;
  bool encryption_flat = false;
};

Verdicts evaluate(const gpusim::DeviceConfig& dev) {
  gpusim::FluidEngine engine(dev);
  auto run_total = [&](std::vector<gpusim::KernelInstance> insts) {
    gpusim::LaunchPlan plan;
    plan.instances = std::move(insts);
    return engine.run(plan).total_time.seconds();
  };
  auto one = [&](const workloads::InstanceSpec& s, int id = 0) {
    return gpusim::KernelInstance{s.gpu, id, ""};
  };

  Verdicts v;
  {
    const auto mc = workloads::scenario1_montecarlo();
    const auto enc = workloads::scenario1_encryption();
    const double serial = run_total({one(mc)}) + run_total({one(enc)});
    const double consolidated = run_total({one(mc), one(enc, 1)});
    v.scenario1_harmful = consolidated > serial;
  }
  {
    const auto bs = workloads::scenario2_blackscholes();
    const auto s = workloads::scenario2_search();
    const double serial = run_total({one(bs)}) + run_total({one(s)});
    const double consolidated = run_total({one(bs), one(s, 1)});
    v.scenario2_beneficial = consolidated < 0.95 * serial;
  }
  {
    const auto enc = workloads::encryption_12k();
    const double t1 = run_total({one(enc)});
    std::vector<gpusim::KernelInstance> nine;
    for (int i = 0; i < 9; ++i) nine.push_back(one(enc, i));
    v.encryption_flat = run_total(std::move(nine)) < 1.3 * t1;
  }
  return v;
}

const char* mark(bool b) { return b ? "yes" : "NO"; }

}  // namespace

int main(int argc, char** argv) {
  using namespace ewc;

  bench::header("Extension: device-parameter sensitivity",
                "do the Table 2/3 and Figure 1 conclusions survive +/-20% "
                "perturbations of the calibrated constants?");

  struct Case {
    std::string label;
    gpusim::DeviceConfig dev;
  };
  std::vector<Case> cases;
  auto base = gpusim::tesla_c1060();
  cases.push_back({"baseline (C1060)", base});
  for (double f : {0.8, 1.2}) {
    auto d = base;
    d.dram_bandwidth = common::Bandwidth::from_bytes_per_second(
        base.dram_bandwidth.bytes_per_second() * f);
    cases.push_back({"bandwidth x" + common::TextTable::num(f, 1), d});
  }
  for (double f : {0.8, 1.2}) {
    auto d = base;
    d.dram_latency_cycles = base.dram_latency_cycles * f;
    cases.push_back({"latency x" + common::TextTable::num(f, 1), d});
  }
  for (double p : {0.0, 0.12}) {
    auto d = base;
    d.mixing_penalty_per_kernel = p;
    cases.push_back({"mixing penalty " + common::TextTable::num(p, 2), d});
  }
  {
    auto d = base;
    d.memory_level_parallelism = 8.0;
    cases.push_back({"MLP 6 -> 8", d});
  }

  common::TextTable t({"perturbation", "scenario1 harmful", "scenario2 wins",
                       "9x enc ~flat"});
  // Each perturbation gets its own engine, so the sweep parallelizes
  // cleanly; indexed results keep the printed order deterministic.
  std::vector<Verdicts> verdicts(cases.size());
  common::ThreadPool::shared().parallel_for(
      0, cases.size(),
      [&](std::size_t i) { verdicts[i] = evaluate(cases[i].dev); });
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& v = verdicts[i];
    t.add_row({cases[i].label, mark(v.scenario1_harmful),
               mark(v.scenario2_beneficial), mark(v.encryption_flat)});
  }
  std::cout << t << "\n";
  std::cout
      << "reading the flips: Scenario 1's HARM requires the two kernels to "
         "saturate DRAM — more bandwidth (or less latency pressure) "
         "un-saturates them and the loss shrinks to 'no benefit'; removing "
         "the row-locality mixing penalty does the same, identifying it as "
         "the harm mechanism. The flat-encryption property fails exactly "
         "when 27 blocks' demand outgrows the (reduced) bandwidth. Scenario "
         "2's win survives every perturbation.\n";
  ewc::bench::write_observability_json(argc, argv, "bench_sensitivity");
  return 0;
}
