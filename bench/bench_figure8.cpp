// Figure 8: multiple sorting (6 K elements) instances under the four setups.
// Paper: consolidation benefit grows from 1.4x to 2x vs CPU at 9 instances;
// manual consolidation time stays almost constant; serial loses to CPU.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ewc;
  bench::Harness h;

  bench::header("Figure 8: sorting instances, four setups",
                "1.4x -> 2x benefit vs CPU (at 9 instances); manual "
                "consolidation time ~constant; serial GPU loses to CPU");

  const auto spec = workloads::sorting_6k();
  common::TextTable t({"n", "CPU t(s)", "serial t(s)", "manual t(s)",
                       "dynamic t(s)", "CPU E(J)", "dynamic E(J)",
                       "speedup vs CPU"});
  for (int n = 1; n <= 9; ++n) {
    std::vector<consolidate::WorkloadMix> mix{{spec, n}};
    const auto r = h.runner.compare(mix);
    t.add_row({std::to_string(n), bench::fmt(r.cpu.time.seconds(), 2),
               bench::fmt(r.serial_gpu.time.seconds(), 2),
               bench::fmt(r.manual.time.seconds(), 2),
               bench::fmt(r.dynamic_framework.time.seconds(), 2),
               bench::fmt(r.cpu.energy.joules(), 0),
               bench::fmt(r.dynamic_framework.energy.joules(), 0),
               bench::fmt(r.cpu.time / r.dynamic_framework.time, 2) + "x"});
  }
  std::cout << t << "\n";
  ewc::bench::write_observability_json(argc, argv, "bench_figure8");
  return 0;
}
