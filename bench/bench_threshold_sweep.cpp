// Extension E8: the batching-threshold trade-off (paper Section VII).
//
// The backend consolidates when pending kernels reach 10 x #GPUs, a number
// the paper says "can be adjusted based on further observation". This bench
// makes that observation: the same Poisson request trace is replayed through
// the queue simulator at several thresholds, reporting request latency vs
// energy — the knob's actual trade-off curve.
#include "bench/bench_common.hpp"

#include "common/thread_pool.hpp"
#include "consolidate/queue_sim.hpp"
#include "trace/trace.hpp"

int main(int argc, char** argv) {
  using namespace ewc;
  bench::Harness h;

  bench::header("Extension: batching-threshold sweep",
                "paper uses threshold = 10 x #GPUs, \"can be adjusted\"");

  std::map<std::string, workloads::InstanceSpec> catalogue;
  for (auto spec : {workloads::encryption_12k(), workloads::sorting_6k(),
                    workloads::t56_blackscholes()}) {
    catalogue.emplace(spec.name, std::move(spec));
  }
  trace::PoissonTraceGenerator gen({{"encryption_12k", 4.0},
                                    {"sorting_6k", 2.0},
                                    {"blackscholes", 1.0}},
                                   /*rate=*/1.5, /*seed=*/7);
  const auto requests = gen.generate(90);
  std::cout << requests.size() << " requests at ~1.5 req/s over "
            << bench::fmt(requests.back().arrival_seconds, 0) << " s\n\n";

  common::TextTable t({"threshold", "batches", "mean latency (s)",
                       "p95 latency (s)", "makespan (s)", "energy (J)",
                       "J/request"});
  // Sweep points are independent replays: run them on the shared pool and
  // collect per-index results so row order stays deterministic.
  const std::vector<int> thresholds{1, 2, 5, 10, 20, 45};
  std::vector<consolidate::QueueSimResult> results(thresholds.size());
  common::ThreadPool::shared().parallel_for(
      0, thresholds.size(), [&](std::size_t i) {
        consolidate::QueueSimOptions opt;
        opt.batch_threshold = thresholds[i];
        opt.batch_timeout = common::Duration::from_seconds(60.0);
        consolidate::QueueSimulator sim(h.engine, h.training.model, catalogue,
                                        opt);
        results[i] = sim.run(requests);
      });
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    const auto& r = results[i];
    t.add_row({std::to_string(thresholds[i]), std::to_string(r.batches),
               bench::fmt(r.mean_latency_seconds, 1),
               bench::fmt(r.p95_latency_seconds, 1),
               bench::fmt(r.makespan.seconds(), 1),
               bench::fmt(r.energy.joules(), 0),
               bench::fmt(r.energy.joules() /
                              static_cast<double>(r.outcomes.size()),
                          0)});
  }
  std::cout << t << "\n";
  std::cout << "bigger batches amortize energy per request; latency pays.\n";
  ewc::bench::write_observability_json(argc, argv, "bench_threshold_sweep");
  return 0;
}
