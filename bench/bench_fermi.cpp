// Extension E6: process-level consolidation vs Fermi concurrent kernels.
//
// The paper (Sections I & IX) argues its cross-process consolidation
// complements Fermi's same-process concurrent-kernel execution. This bench
// quantifies that: the same request batch runs as
//   (a) GT200 + dynamic framework (cross-process, with overheads),
//   (b) Fermi, serial kernels (one process at a time, no framework),
//   (c) Fermi, concurrent kernels from ONE merged process (no IPC
//       overheads — what CUDA 4.0 offers when all requests share a context),
//   (d) Fermi + dynamic framework (consolidation still wins when requests
//       come from different processes, which Fermi alone cannot merge).
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ewc;

  bench::header("Extension: GT200 framework vs Fermi concurrent kernels",
                "paper IX: \"our process-level consolidation ... can "
                "complement future GPU architectures\"");

  gpusim::FluidEngine gt200;
  gpusim::FluidEngine fermi(gpusim::fermi_c2050(), gpusim::c2050_energy());

  power::ModelTrainer gt200_trainer(gt200);
  const auto gt200_model =
      gt200_trainer.train(workloads::rodinia_training_kernels()).model;
  power::ModelTrainer fermi_trainer(fermi);
  const auto fermi_model =
      fermi_trainer.train(workloads::rodinia_training_kernels()).model;

  consolidate::ExperimentRunner gt200_runner(gt200, gt200_model);
  consolidate::ExperimentRunner fermi_runner(fermi, fermi_model);

  struct Case {
    std::string label;
    std::vector<consolidate::WorkloadMix> mix;
  };
  const std::vector<Case> cases = {
      {"9 x encryption", {{workloads::encryption_12k(), 9}}},
      {"1S+10B", {{workloads::t56_search(), 1},
                  {workloads::t56_blackscholes(), 10}}},
      {"3E+3M", {{workloads::t78_encryption(), 3},
                 {workloads::t78_montecarlo(), 3}}},
  };

  common::TextTable t({"batch", "GT200+framework t(s)", "Fermi serial t(s)",
                       "Fermi concurrent t(s)", "Fermi+framework t(s)",
                       "Fermi+framework E(J)"});
  for (const auto& c : cases) {
    const auto a = gt200_runner.run_dynamic(c.mix);
    const auto b = fermi_runner.run_serial(c.mix);
    // Concurrent kernels from one context = a manual consolidated launch
    // with no framework overhead.
    const auto conc = fermi_runner.run_manual(c.mix);
    const auto d = fermi_runner.run_dynamic(c.mix);
    t.add_row({c.label, bench::fmt(a.time.seconds(), 1),
               bench::fmt(b.time.seconds(), 1),
               bench::fmt(conc.time.seconds(), 1),
               bench::fmt(d.time.seconds(), 1),
               bench::fmt(d.energy.joules(), 0)});
  }
  std::cout << t << "\n";
  std::cout << "Fermi's concurrent kernels match manual consolidation, but "
               "only within one process; cross-process batches still need "
               "the framework, whose overheads stay small next to the win "
               "over serial execution.\n";
  ewc::bench::write_observability_json(argc, argv, "bench_fermi");
  return 0;
}
