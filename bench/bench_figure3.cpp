// Figure 3: execution-time prediction for TYPE-1 consolidated workloads
// (at most one thread block per SM), predicted vs measured.
#include "bench/bench_common.hpp"

#include "common/stats.hpp"
#include "perf/consolidation_model.hpp"

int main(int argc, char** argv) {
  using namespace ewc;
  bench::Harness h;
  perf::ConsolidationModel model(h.engine.device());

  bench::header("Figure 3: type-1 consolidation time prediction",
                "the extended model \"is accurate\" (bandwidth sharing)");

  const auto enc = workloads::encryption_12k();
  const auto sort = workloads::sorting_6k();
  const auto search = workloads::search_10k();
  const auto bs = workloads::t56_blackscholes();
  const auto mc = workloads::t78_montecarlo();

  struct Case {
    std::string label;
    std::vector<std::pair<const workloads::InstanceSpec*, int>> mix;
  };
  std::vector<Case> cases = {
      {"3 x enc", {{&enc, 3}}},
      {"6 x enc", {{&enc, 6}}},
      {"9 x enc", {{&enc, 9}}},
      {"enc+sort", {{&enc, 1}, {&sort, 1}}},
      {"2enc+2sort", {{&enc, 2}, {&sort, 2}}},
      {"search+5bs", {{&search, 1}, {&bs, 5}}},
      {"sort+mc", {{&sort, 1}, {&mc, 1}}},
      {"enc+search+bs", {{&enc, 1}, {&search, 1}, {&bs, 1}}},
      {"3sort+3mc", {{&sort, 3}, {&mc, 3}}},
      {"2search+2bs", {{&search, 2}, {&bs, 2}}},
  };

  common::TextTable t(
      {"consolidation", "blocks", "measured (s)", "predicted (s)", "error"});
  std::vector<double> pred, meas;
  for (const auto& c : cases) {
    gpusim::LaunchPlan plan;
    int id = 0;
    for (const auto& [spec, count] : c.mix) {
      for (int i = 0; i < count; ++i) {
        plan.instances.push_back(gpusim::KernelInstance{spec->gpu, id++, ""});
      }
    }
    if (model.classify(plan) != perf::ConsolidationType::kType1) {
      std::cout << "skipping " << c.label << ": not type 1\n";
      continue;
    }
    const auto run = h.engine.run(plan);
    const auto p = model.predict(plan);
    pred.push_back(p.total_time.seconds());
    meas.push_back(run.total_time.seconds());
    t.add_row({c.label, std::to_string(plan.total_blocks()),
               bench::fmt(run.total_time.seconds(), 2),
               bench::fmt(p.total_time.seconds(), 2),
               bench::fmt(100.0 * common::relative_error(
                              p.total_time.seconds(), run.total_time.seconds()),
                          1) + "%"});
  }
  std::cout << t << "\nmean error: "
            << bench::fmt(100.0 * common::mean_relative_error(pred, meas), 1)
            << "%  max error: "
            << bench::fmt(100.0 * common::max_relative_error(pred, meas), 1)
            << "%\n";
  ewc::bench::write_observability_json(argc, argv, "bench_figure3");
  return 0;
}
