// Micro-benchmarks (google-benchmark): throughput of the simulator and the
// prediction models themselves. The decision engine runs in the backend's
// request path, so its cost must stay negligible next to the workloads
// (paper Section VII: "the overhead of calculating performance and energy
// benefits is low").
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "cpusim/engine.hpp"
#include "gpusim/engine.hpp"
#include "gpusim/simd.hpp"
#include "perf/consolidation_model.hpp"
#include "power/event_rates.hpp"
#include "power/trainer.hpp"
#include "workloads/paper_configs.hpp"
#include "workloads/rodinia_like.hpp"

namespace {

using namespace ewc;

gpusim::LaunchPlan make_plan(int instances) {
  static const auto spec = workloads::encryption_12k();
  gpusim::LaunchPlan plan;
  for (int i = 0; i < instances; ++i) {
    plan.instances.push_back(gpusim::KernelInstance{spec.gpu, i, ""});
  }
  return plan;
}

void BM_EngineRun(benchmark::State& state) {
  gpusim::FluidEngine engine;
  const auto plan = make_plan(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(plan));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineRun)->Arg(1)->Arg(8)->Arg(32)->Arg(64);

// Phase-split engine timing: the advance loop (dispatch + fluid events) vs
// the rest of run() (statics, transfers, result assembly), separated via the
// engine's own wall_advance/wall_total instrumentation. Arg 2 selects the
// advance path (0 = scalar reference, 1 = SIMD), so one run of this
// benchmark in the default build yields the scalar-vs-SIMD speedup ratio CI
// publishes; in an EWC_SIMD=OFF build the SIMD rows are skipped.
void BM_EngineAdvance(benchmark::State& state) {
  gpusim::FluidEngine engine;
  const auto plan = make_plan(static_cast<int>(state.range(0)));
  const bool simd = state.range(1) != 0;
  if (simd && !gpusim::simd_compiled_in()) {
    state.SkipWithError("SIMD path not compiled in (EWC_SIMD=OFF)");
    return;
  }
  const bool prev = gpusim::simd_enabled();
  gpusim::set_simd_enabled(simd);
  double advance_s = 0.0;
  double total_s = 0.0;
  double events = 0.0;
  for (auto _ : state) {
    const auto run = engine.run(plan);
    advance_s += run.wall_advance_seconds;
    total_s += run.wall_total_seconds;
    events = static_cast<double>(run.fluid_events);
    benchmark::DoNotOptimize(&run);
  }
  gpusim::set_simd_enabled(prev);
  const auto iters = static_cast<double>(state.iterations());
  state.counters["advance_s_per_run"] = advance_s / iters;
  state.counters["advance_frac"] = total_s > 0.0 ? advance_s / total_s : 0.0;
  state.counters["fluid_events"] = events;
  state.counters["simd"] = simd ? 1.0 : 0.0;
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EngineAdvance)
    ->Args({8, 0})->Args({8, 1})
    ->Args({64, 0})->Args({64, 1})
    ->Args({256, 0})->Args({256, 1});

void BM_PerfPredict(benchmark::State& state) {
  perf::ConsolidationModel model;
  const auto plan = make_plan(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(plan));
  }
}
BENCHMARK(BM_PerfPredict)->Arg(2)->Arg(16)->Arg(64);

void BM_PowerPredict(benchmark::State& state) {
  gpusim::FluidEngine engine;
  power::ModelTrainer trainer(engine);
  const auto report = trainer.train(workloads::rodinia_training_kernels());
  perf::ConsolidationModel perf_model;
  const auto plan = make_plan(8);
  const auto timing = perf_model.predict(plan);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        report.model.predict(engine.device(), plan, timing));
  }
}
BENCHMARK(BM_PowerPredict);

void BM_PowerTraining(benchmark::State& state) {
  gpusim::FluidEngine engine;
  const auto kernels = workloads::rodinia_training_kernels();
  for (auto _ : state) {
    power::ModelTrainer trainer(engine);
    benchmark::DoNotOptimize(trainer.train(kernels));
  }
}
BENCHMARK(BM_PowerTraining);

void BM_CpuEngine(benchmark::State& state) {
  cpusim::CpuEngine cpu;
  std::vector<cpusim::CpuTask> tasks;
  for (int i = 0; i < state.range(0); ++i) {
    cpusim::CpuTask t;
    t.name = "t";
    t.core_seconds = 1.0 + 0.1 * i;
    t.threads = 1 + i % 8;
    t.cache_sensitivity = 0.4;
    t.instance_id = i;
    tasks.push_back(t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu.run(tasks));
  }
}
BENCHMARK(BM_CpuEngine)->Arg(4)->Arg(32);

void BM_EventRateExtraction(benchmark::State& state) {
  gpusim::DeviceConfig dev;
  const auto plan = make_plan(16);
  for (auto _ : state) {
    auto totals = power::plan_event_totals(dev, plan);
    benchmark::DoNotOptimize(power::virtual_sm_rates(dev, totals, 1e9));
  }
}
BENCHMARK(BM_EventRateExtraction);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so the run can end with the shared
// observability JSON block. --json/--json= is ours, not google-benchmark's,
// so it is stripped before Initialize (which rejects unknown flags).
int main(int argc, char** argv) {
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) continue;
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ewc::bench::write_observability_json(argc, argv, "bench_micro");
  return 0;
}
