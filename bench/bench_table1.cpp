// Table 1: "Poor GPU speedup over multicore CPU" — the six enterprise
// workloads at enterprise request sizes, single instance each.
#include "bench/bench_common.hpp"

#include "cpusim/engine.hpp"

int main(int argc, char** argv) {
  using namespace ewc;
  bench::Harness h;
  cpusim::CpuEngine cpu;

  bench::header("Table 1: GPU speedup over multicore CPU (single instance)",
                "speedups 0.84 / 0.15 / 1.45 / 0.48 / 1.68 / 7.0");

  const double paper_speedup[] = {0.84, 0.15, 1.45, 0.48, 1.68, 7.0};
  common::TextTable t({"workload", "blocks", "thr/blk", "CPU (s)", "GPU (s)",
                       "speedup", "paper"});
  auto specs = workloads::table1_specs();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = specs[i];
    gpusim::LaunchPlan plan;
    plan.instances.push_back(gpusim::KernelInstance{spec.gpu, 0, "user"});
    const auto gpu = h.engine.run(plan);
    const auto host = cpu.run({spec.cpu});
    t.add_row({spec.name, std::to_string(spec.gpu.num_blocks),
               std::to_string(spec.gpu.threads_per_block),
               bench::fmt(host.makespan.seconds(), 2),
               bench::fmt(gpu.total_time.seconds(), 2),
               bench::fmt(host.makespan.seconds() / gpu.total_time.seconds(), 2),
               bench::fmt(paper_speedup[i], 2)});
  }
  std::cout << t << "\n";
  ewc::bench::write_observability_json(argc, argv, "bench_table1");
  return 0;
}
