// Figure 1: "Benefit with consolidating workloads" — total execution time
// and total energy for 1..12 encryption (12 KB) instances under three
// setups: multicore CPU, serial GPU, and consolidated GPU.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ewc;
  bench::Harness h;

  bench::header(
      "Figure 1: consolidating encryption instances (12 KB each)",
      "best case 9 instances: 68% less time, 29% energy savings vs CPU; "
      "single GPU instance 16% slower & 1.5x energy of CPU");

  const auto spec = workloads::encryption_12k();
  common::TextTable t({"instances", "CPU t(s)", "serial t(s)", "consol t(s)",
                       "CPU E(J)", "serial E(J)", "consol E(J)",
                       "t vs CPU", "E vs CPU"});
  for (int n = 1; n <= 12; ++n) {
    std::vector<consolidate::WorkloadMix> mix{{spec, n}};
    const auto cpu = h.runner.run_cpu(mix);
    const auto serial = h.runner.run_serial(mix);
    const auto consol = h.runner.run_manual(mix);
    t.add_row({std::to_string(n), bench::fmt(cpu.time.seconds(), 2),
               bench::fmt(serial.time.seconds(), 2),
               bench::fmt(consol.time.seconds(), 2),
               bench::fmt(cpu.energy.joules(), 0),
               bench::fmt(serial.energy.joules(), 0),
               bench::fmt(consol.energy.joules(), 0),
               bench::fmt(100.0 * (1.0 - consol.time / cpu.time), 0) + "%",
               bench::fmt(100.0 * (1.0 - consol.energy / cpu.energy), 0) + "%"});
  }
  std::cout << t << "\n";
  ewc::bench::write_observability_json(argc, argv, "bench_figure1");
  return 0;
}
