// Ablations A1-A3: the framework's overhead-reduction optimizations
// (paper Section IV): leader-frontend coordination for homogeneous groups,
// argument batching, and constant-data reuse. Each is toggled independently
// on the homogeneous-encryption workload the paper uses to motivate them.
#include "bench/bench_common.hpp"

namespace {

using namespace ewc;

consolidate::SetupResult run_with(bench::Harness& h,
                                  const consolidate::Optimizations& opts,
                                  int n) {
  consolidate::BackendOptions options;
  options.optimizations = opts;
  consolidate::ExperimentRunner runner(h.engine, h.training.model, options);
  std::vector<consolidate::WorkloadMix> mix{{workloads::encryption_12k(), n}};
  return runner.run_dynamic(mix);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ewc;
  bench::Harness h;

  bench::header("Ablation A1-A3: framework overhead optimizations",
                "leader election \"reduces severe communication overhead\"; "
                "argument batching reduces frontend/backend interactions; "
                "constant reuse uploads AES tables once");

  common::TextTable t({"configuration", "n=3 t(s)", "n=6 t(s)", "n=9 t(s)",
                       "n=9 E(J)"});
  auto row = [&](const std::string& label, consolidate::Optimizations opts) {
    const auto r3 = run_with(h, opts, 3);
    const auto r6 = run_with(h, opts, 6);
    const auto r9 = run_with(h, opts, 9);
    t.add_row({label, bench::fmt(r3.time.seconds(), 2),
               bench::fmt(r6.time.seconds(), 2),
               bench::fmt(r9.time.seconds(), 2),
               bench::fmt(r9.energy.joules(), 0)});
  };

  consolidate::Optimizations all;
  row("all optimizations", all);

  consolidate::Optimizations no_leader = all;
  no_leader.leader_election = false;
  row("A1: no leader election", no_leader);

  consolidate::Optimizations no_batch = all;
  no_batch.argument_batching = false;
  row("A2: no argument batching", no_batch);

  consolidate::Optimizations no_reuse = all;
  no_reuse.constant_data_reuse = false;
  row("A3: no constant-data reuse", no_reuse);

  consolidate::Optimizations none;
  none.leader_election = false;
  none.argument_batching = false;
  none.constant_data_reuse = false;
  row("none (raw framework)", none);

  std::cout << t << "\n";
  ewc::bench::write_observability_json(argc, argv, "bench_ablation_overheads");
  return 0;
}
