// Tables 7 & 8: heterogeneous Encryption (E) + MonteCarlo (M) mixes under
// the four setups — execution time (Table 7) and total energy (Table 8).
// Paper best case (5E+15M): 19x speedup, 22x energy savings vs CPU.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ewc;
  bench::Harness h;

  bench::header(
      "Tables 7 & 8: Encryption + MonteCarlo mixes",
      "paper times (s): 1E+1M 387.7/57.2/57.2/88.9, 3E+3M 605.5/57.4/57.5/266.8,"
      " 4E+12M 976.6/57.7/57.8/701.5, 5E+15M 1163.4/57.8/59.9/876.9");

  const auto e = workloads::t78_encryption();
  const auto m = workloads::t78_montecarlo();
  struct Row {
    std::string label;
    int ne, nm;
  };
  const std::vector<Row> rows = {
      {"1E+1M", 1, 1}, {"3E+3M", 3, 3}, {"4E+12M", 4, 12}, {"5E+15M", 5, 15}};

  common::TextTable time_table(
      {"mix", "CPU (s)", "Manual (s)", "Dynamic (s)", "Serial (s)"});
  common::TextTable energy_table(
      {"mix", "CPU (J)", "Manual (J)", "Dynamic (J)", "Serial (J)"});
  double best_speedup = 0.0, best_energy = 0.0;
  for (const auto& row : rows) {
    std::vector<consolidate::WorkloadMix> mix{{e, row.ne}, {m, row.nm}};
    const auto r = h.runner.compare(mix);
    time_table.add_row({row.label, bench::fmt(r.cpu.time.seconds(), 1),
                        bench::fmt(r.manual.time.seconds(), 1),
                        bench::fmt(r.dynamic_framework.time.seconds(), 1),
                        bench::fmt(r.serial_gpu.time.seconds(), 1)});
    energy_table.add_row({row.label, bench::fmt(r.cpu.energy.joules(), 0),
                          bench::fmt(r.manual.energy.joules(), 0),
                          bench::fmt(r.dynamic_framework.energy.joules(), 0),
                          bench::fmt(r.serial_gpu.energy.joules(), 0)});
    best_speedup = std::max(best_speedup, r.cpu.time / r.dynamic_framework.time);
    best_energy =
        std::max(best_energy, r.cpu.energy / r.dynamic_framework.energy);
  }
  std::cout << "Table 7 (execution time):\n" << time_table << "\n";
  std::cout << "Table 8 (total energy):\n" << energy_table << "\n";
  std::cout << "best dynamic-vs-CPU speedup: " << bench::fmt(best_speedup, 1)
            << "x (paper: 19x), energy savings: " << bench::fmt(best_energy, 1)
            << "x (paper: 22x)\n";
  ewc::bench::write_observability_json(argc, argv, "bench_table7_8");
  return 0;
}
