// Extension E9: three estimates per kernel — the Hong-Kim ISCA'09 closed
// form (the model the paper extends, ref [8]), this repository's extended
// static model (Section V), and the dynamic simulator (the "measurement").
#include "bench/bench_common.hpp"

#include "common/stats.hpp"
#include "perf/analytic.hpp"
#include "perf/hong_kim.hpp"

int main(int argc, char** argv) {
  using namespace ewc;
  bench::Harness h;
  perf::AnalyticModel model(h.engine.device());

  bench::header("Extension: Hong-Kim [8] vs extended model vs simulator",
                "Section V builds on [8]; this quantifies what the "
                "extension buys on single kernels");

  struct Case {
    std::string label;
    gpusim::KernelDesc desc;
  };
  std::vector<Case> cases;
  for (const auto& spec :
       {workloads::encryption_12k(), workloads::sorting_6k(),
        workloads::search_10k(), workloads::t56_blackscholes(),
        workloads::t78_montecarlo(), workloads::scenario1_montecarlo(),
        workloads::scenario2_search()}) {
    cases.push_back({spec.name, spec.gpu});
  }

  common::TextTable t({"kernel", "simulated (s)", "extended model (s)",
                       "Hong-Kim (s)", "HK case", "ext err", "HK err"});
  std::vector<double> ext_err, hk_err;
  for (const auto& c : cases) {
    gpusim::LaunchPlan plan;
    plan.instances.push_back(gpusim::KernelInstance{c.desc, 0, ""});
    const double sim = h.engine.run(plan).kernel_time.seconds();
    const double ext = model.predict(c.desc).kernel_time.seconds();
    const auto hk = perf::hong_kim_cycles(h.engine.device(), c.desc);
    const double hks = hk.time(h.engine.device()).seconds();
    ext_err.push_back(common::relative_error(ext, sim));
    hk_err.push_back(common::relative_error(hks, sim));
    t.add_row({c.label, bench::fmt(sim, 2), bench::fmt(ext, 2),
               bench::fmt(hks, 2), perf::hong_kim_case_name(hk.which_case),
               bench::fmt(100.0 * ext_err.back(), 1) + "%",
               bench::fmt(100.0 * hk_err.back(), 1) + "%"});
  }
  std::cout << t << "\nmean error: extended "
            << bench::fmt(100.0 * common::mean(ext_err), 1) << "%, Hong-Kim "
            << bench::fmt(100.0 * common::mean(hk_err), 1) << "%\n";
  ewc::bench::write_observability_json(argc, argv, "bench_model_comparison");
  return 0;
}
