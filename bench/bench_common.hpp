// Shared setup for the paper-reproduction bench harnesses.
//
// Each bench binary regenerates one table or figure of the paper: it builds
// the simulated node, trains the power model exactly as Section VI
// prescribes, runs the experiment, and prints the same rows/series the paper
// reports (plus the paper's own numbers where quoted, for comparison).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "consolidate/runner.hpp"
#include "gpusim/engine.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/jsonl.hpp"
#include "power/trainer.hpp"
#include "trace/counters.hpp"
#include "workloads/paper_configs.hpp"
#include "workloads/rodinia_like.hpp"

namespace ewc::bench {

struct Harness {
  gpusim::FluidEngine engine;
  power::TrainingReport training;
  consolidate::ExperimentRunner runner;

  Harness()
      : engine(),
        training(power::ModelTrainer(engine).train(
            workloads::rodinia_training_kernels())),
        runner(engine, training.model) {}
};

inline std::string fmt(double v, int precision = 1) {
  return common::TextTable::num(v, precision);
}

inline void header(const std::string& title, const std::string& paper_claim) {
  std::cout << "==== " << title << " ====\n";
  if (!paper_claim.empty()) std::cout << "paper: " << paper_claim << "\n";
  std::cout << "\n";
}

/// The observability sidecar path for this run: `--json <path>` (or
/// `--json=<path>`) on the command line, else the EWC_BENCH_JSON environment
/// variable, else empty (no sidecar).
inline std::string observability_json_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) return argv[i + 1];
    if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
  }
  if (const char* env = std::getenv("EWC_BENCH_JSON")) return env;
  return {};
}

/// One-line JSON record of everything the run measured: every trace counter
/// plus every histogram with count/mean/p50/p95/p99. Appended (JSON-lines)
/// so repeated runs accumulate a diffable log instead of clobbering each
/// other. Call at the end of main; no-op when no path is configured.
inline void write_observability_json(int argc, char** argv,
                                     const std::string& bench_name) {
  const std::string path = observability_json_path(argc, argv);
  if (path.empty()) return;

  obs::json::Object counters;
  for (const auto& [name, value] : trace::Counters::instance().snapshot()) {
    counters.emplace(name, value);
  }
  obs::json::Object histograms;
  for (const auto& [name, h] : obs::HistogramRegistry::instance()
                                   .snapshot_all()) {
    obs::json::Object entry;
    entry.emplace("count", static_cast<double>(h.total));
    entry.emplace("mean", h.mean());
    entry.emplace("p50", h.percentile(50));
    entry.emplace("p95", h.percentile(95));
    entry.emplace("p99", h.percentile(99));
    histograms.emplace(name, std::move(entry));
  }
  obs::json::Object doc;
  doc.emplace("bench", bench_name);
  doc.emplace("counters", std::move(counters));
  doc.emplace("histograms", std::move(histograms));

  // One atomic O_APPEND write per datapoint: bench binaries running in
  // parallel (CI shards, sweep scripts) append to the same log, and a
  // buffered ofstream could interleave partial lines between them.
  std::string err;
  if (!obs::append_jsonl_line(path, obs::json::Value(std::move(doc)).dump(),
                              &err)) {
    std::cerr << "bench: " << err << "\n";
    return;
  }
  std::cout << "observability JSON appended to " << path << "\n";
}

}  // namespace ewc::bench
