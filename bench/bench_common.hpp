// Shared setup for the paper-reproduction bench harnesses.
//
// Each bench binary regenerates one table or figure of the paper: it builds
// the simulated node, trains the power model exactly as Section VI
// prescribes, runs the experiment, and prints the same rows/series the paper
// reports (plus the paper's own numbers where quoted, for comparison).
#pragma once

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "consolidate/runner.hpp"
#include "gpusim/engine.hpp"
#include "power/trainer.hpp"
#include "workloads/paper_configs.hpp"
#include "workloads/rodinia_like.hpp"

namespace ewc::bench {

struct Harness {
  gpusim::FluidEngine engine;
  power::TrainingReport training;
  consolidate::ExperimentRunner runner;

  Harness()
      : engine(),
        training(power::ModelTrainer(engine).train(
            workloads::rodinia_training_kernels())),
        runner(engine, training.model) {}
};

inline std::string fmt(double v, int precision = 1) {
  return common::TextTable::num(v, precision);
}

inline void header(const std::string& title, const std::string& paper_claim) {
  std::cout << "==== " << title << " ====\n";
  if (!paper_claim.empty()) std::cout << "paper: " << paper_claim << "\n";
  std::cout << "\n";
}

}  // namespace ewc::bench
