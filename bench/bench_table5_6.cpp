// Tables 5 & 6: heterogeneous Search (S) + BlackScholes (B) mixes under the
// four setups — execution time (Table 5) and total energy (Table 6).
// Paper best case (1S+20B): 9.3x speedup, 9.9x energy savings vs CPU.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ewc;
  bench::Harness h;

  bench::header(
      "Tables 5 & 6: Search + BlackScholes mixes",
      "paper times (s): 1S+1B 60.3/36.6/38.1/69.4, 1S+10B 218.4/37.4/40.2/377.2,"
      " 2S+10B 220.5/38.1/41.1/412.5, 1S+20B 401.7/38.4/43.4/719.2");

  const auto s = workloads::t56_search();
  const auto b = workloads::t56_blackscholes();
  struct Row {
    std::string label;
    int ns, nb;
  };
  const std::vector<Row> rows = {
      {"1S+1B", 1, 1}, {"1S+10B", 1, 10}, {"2S+10B", 2, 10}, {"1S+20B", 1, 20}};

  common::TextTable time_table(
      {"mix", "CPU (s)", "Manual (s)", "Dynamic (s)", "Serial (s)"});
  common::TextTable energy_table(
      {"mix", "CPU (J)", "Manual (J)", "Dynamic (J)", "Serial (J)"});
  double best_speedup = 0.0, best_energy = 0.0;
  for (const auto& row : rows) {
    std::vector<consolidate::WorkloadMix> mix{{s, row.ns}, {b, row.nb}};
    const auto r = h.runner.compare(mix);
    time_table.add_row({row.label, bench::fmt(r.cpu.time.seconds(), 1),
                        bench::fmt(r.manual.time.seconds(), 1),
                        bench::fmt(r.dynamic_framework.time.seconds(), 1),
                        bench::fmt(r.serial_gpu.time.seconds(), 1)});
    energy_table.add_row({row.label, bench::fmt(r.cpu.energy.joules(), 0),
                          bench::fmt(r.manual.energy.joules(), 0),
                          bench::fmt(r.dynamic_framework.energy.joules(), 0),
                          bench::fmt(r.serial_gpu.energy.joules(), 0)});
    best_speedup = std::max(best_speedup, r.cpu.time / r.dynamic_framework.time);
    best_energy =
        std::max(best_energy, r.cpu.energy / r.dynamic_framework.energy);
  }
  std::cout << "Table 5 (execution time):\n" << time_table << "\n";
  std::cout << "Table 6 (total energy):\n" << energy_table << "\n";
  std::cout << "best dynamic-vs-CPU speedup: " << bench::fmt(best_speedup, 1)
            << "x (paper: 9.3x), energy savings: " << bench::fmt(best_energy, 1)
            << "x (paper: 9.9x)\n";
  ewc::bench::write_observability_json(argc, argv, "bench_table5_6");
  return 0;
}
