// Ablation A4: the energy-aware decision engine (paper Section VII) vs the
// naive policies. Always-consolidate falls into the Scenario-1 trap; the
// model-based policy routes that batch away from consolidation while still
// harvesting the Scenario-2-style wins.
#include "bench/bench_common.hpp"

namespace {

using namespace ewc;

struct PolicyResult {
  double time = 0.0;
  double energy = 0.0;
};

PolicyResult run_policy(bench::Harness& h, consolidate::DecisionPolicy policy,
                        const std::vector<consolidate::WorkloadMix>& mix) {
  consolidate::BackendOptions options;
  options.policy = policy;
  consolidate::ExperimentRunner runner(h.engine, h.training.model, options);
  const auto r = runner.run_dynamic(mix);
  return PolicyResult{r.time.seconds(), r.energy.joules()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ewc;
  bench::Harness h;

  bench::header("Ablation A4: decision policy",
                "judicious (model-based) consolidation avoids Scenario-1-"
                "style losses that always-consolidate incurs");

  struct Case {
    std::string label;
    std::vector<consolidate::WorkloadMix> mix;
  };
  const std::vector<Case> cases = {
      {"scenario1 batch (MC+enc)",
       {{workloads::scenario1_montecarlo(), 1},
        {workloads::scenario1_encryption(), 1}}},
      {"scenario2 batch (BS+search)",
       {{workloads::scenario2_blackscholes(), 1},
        {workloads::scenario2_search(), 1}}},
      {"homogeneous enc x9", {{workloads::encryption_12k(), 9}}},
      {"1E+1M", {{workloads::t78_encryption(), 1},
                 {workloads::t78_montecarlo(), 1}}},
  };

  common::TextTable t({"batch", "model t(s)", "always t(s)", "never t(s)",
                       "model E(J)", "always E(J)", "never E(J)"});
  for (const auto& c : cases) {
    const auto model = run_policy(h, consolidate::DecisionPolicy::kModelBased, c.mix);
    const auto always =
        run_policy(h, consolidate::DecisionPolicy::kAlwaysConsolidate, c.mix);
    const auto never =
        run_policy(h, consolidate::DecisionPolicy::kNeverConsolidate, c.mix);
    t.add_row({c.label, bench::fmt(model.time, 1), bench::fmt(always.time, 1),
               bench::fmt(never.time, 1), bench::fmt(model.energy, 0),
               bench::fmt(always.energy, 0), bench::fmt(never.energy, 0)});
  }
  std::cout << t << "\n";
  std::cout << "model-based should track min(always, never) per batch.\n";
  ewc::bench::write_observability_json(argc, argv, "bench_ablation_decision");
  return 0;
}
