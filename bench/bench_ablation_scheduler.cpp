// Extension E7 / ablation A5: block-scheduler sensitivity.
//
// Section V's type-2 model replays a ROUND-ROBIN dispatch; this ablation
// measures how much the consolidated results (and the model's accuracy)
// depend on that assumption by re-running the paper's type-2 scenarios
// under alternative GigaThread policies.
#include "bench/bench_common.hpp"

#include "common/stats.hpp"
#include "perf/consolidation_model.hpp"

int main(int argc, char** argv) {
  using namespace ewc;

  bench::header("Ablation A5: block-dispatch policy sensitivity",
                "Section V assumes round-robin dispatch; how fragile is it?");

  struct Case {
    std::string label;
    std::vector<std::pair<workloads::InstanceSpec, int>> mix;
  };
  const std::vector<Case> cases = {
      {"scenario1 MC+enc", {{workloads::scenario1_montecarlo(), 1},
                            {workloads::scenario1_encryption(), 1}}},
      {"scenario2 BS+search", {{workloads::scenario2_blackscholes(), 1},
                               {workloads::scenario2_search(), 1}}},
      {"5E+15M", {{workloads::t78_encryption(), 5},
                  {workloads::t78_montecarlo(), 15}}},
  };

  perf::ConsolidationModel model;  // always assumes round-robin

  common::TextTable t({"consolidation", "round-robin (s)", "least-loaded (s)",
                       "random (s)", "model (s)", "worst model error"});
  for (const auto& c : cases) {
    gpusim::LaunchPlan plan;
    int id = 0;
    for (const auto& [spec, n] : c.mix) {
      for (int i = 0; i < n; ++i) {
        plan.instances.push_back(gpusim::KernelInstance{spec.gpu, id++, ""});
      }
    }
    const auto pred = model.predict(plan).total_time.seconds();

    std::vector<double> times;
    for (auto policy : {gpusim::DispatchPolicy::kRoundRobin,
                        gpusim::DispatchPolicy::kLeastLoadedWarps,
                        gpusim::DispatchPolicy::kRandom}) {
      auto cfg = gpusim::tesla_c1060();
      cfg.dispatch_policy = policy;
      gpusim::FluidEngine engine(cfg);
      times.push_back(engine.run(plan).total_time.seconds());
    }
    double worst = 0.0;
    for (double m : times) {
      worst = std::max(worst, common::relative_error(pred, m));
    }
    t.add_row({c.label, bench::fmt(times[0], 1), bench::fmt(times[1], 1),
               bench::fmt(times[2], 1), bench::fmt(pred, 1),
               bench::fmt(100.0 * worst, 1) + "%"});
  }
  std::cout << t << "\n";
  ewc::bench::write_observability_json(argc, argv, "bench_ablation_scheduler");
  return 0;
}
