// Extension E10: the framework on the widened enterprise catalogue.
//
// The paper's intro motivates "search, data mining and analytics"; this
// bench runs the four setups over mixed batches drawn from the full
// 8-workload catalogue (the paper's five + k-means, SHA-256, compression),
// showing the consolidation win is not an artifact of the original five.
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace ewc;
  bench::Harness h;

  bench::header("Extension: widened enterprise catalogue",
                "(beyond the paper's workload set)");

  const auto kmeans = workloads::kmeans_256k();
  const auto sha = workloads::sha256_64k();
  const auto comp = workloads::compression_64m();
  const auto enc = workloads::encryption_12k();
  const auto srt = workloads::sorting_6k();

  std::cout << "first-principles single-instance profiles:\n";
  common::TextTable profiles({"workload", "GPU (s)", "CPU (s)", "speedup"});
  for (const auto& s : {kmeans, sha, comp}) {
    profiles.add_row({s.name, bench::fmt(s.paper_gpu_seconds, 2),
                      bench::fmt(s.paper_cpu_seconds, 2),
                      bench::fmt(s.paper_cpu_seconds / s.paper_gpu_seconds, 2)});
  }
  std::cout << profiles << "\n";

  struct Case {
    std::string label;
    std::vector<consolidate::WorkloadMix> mix;
  };
  const std::vector<Case> cases = {
      {"6 x kmeans", {{kmeans, 6}}},
      {"8 x sha256", {{sha, 8}}},
      {"6 x compression", {{comp, 6}}},
      {"2kmeans+4sha+2comp", {{kmeans, 2}, {sha, 4}, {comp, 2}}},
      {"3enc+3sort+3sha", {{enc, 3}, {srt, 3}, {sha, 3}}},
  };

  common::TextTable t({"batch", "CPU t(s)", "serial t(s)", "dynamic t(s)",
                       "CPU E(J)", "dynamic E(J)", "energy benefit"});
  for (const auto& c : cases) {
    const auto r = h.runner.compare(c.mix);
    t.add_row({c.label, bench::fmt(r.cpu.time.seconds(), 2),
               bench::fmt(r.serial_gpu.time.seconds(), 2),
               bench::fmt(r.dynamic_framework.time.seconds(), 2),
               bench::fmt(r.cpu.energy.joules(), 0),
               bench::fmt(r.dynamic_framework.energy.joules(), 0),
               bench::fmt(r.cpu.energy / r.dynamic_framework.energy, 2) + "x"});
  }
  std::cout << t << "\n";
  std::cout
      << "note: sha256/compression requests run sub-second, so the framework's\n"
         "IPC+staging overhead (sunk by decision time) dominates their batches\n"
         "and the CPU-native deployment wins — the Figure-7 lesson generalizes:\n"
         "consolidation pays once request service times reach seconds.\n";
  ewc::bench::write_observability_json(argc, argv, "bench_enterprise_mix");
  return 0;
}
