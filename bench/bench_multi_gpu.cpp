// Extension E5: multi-GPU consolidation scaling.
//
// The paper's batching threshold is "10 x the number of available GPUs" but
// its testbed has one C1060. This bench completes the picture: a fixed
// request batch is consolidated across 1..4 GPUs and the node-level
// makespan / energy reported, for a bandwidth-saturated batch (scales with
// GPUs) and a latency-bound batch (one GPU already absorbs it).
#include "bench/bench_common.hpp"

#include "consolidate/multi_gpu.hpp"

int main(int argc, char** argv) {
  using namespace ewc;
  bench::Harness h;

  bench::header("Extension: multi-GPU consolidation scaling",
                "(no paper baseline; threshold text implies multi-GPU nodes)");

  struct Case {
    std::string label;
    std::vector<gpusim::KernelInstance> instances;
  };
  std::vector<Case> cases;
  {
    Case c;
    c.label = "8 x scenario1-MC (DRAM-saturated)";
    c.instances = workloads::gpu_instances(workloads::scenario1_montecarlo(), 8);
    cases.push_back(std::move(c));
  }
  {
    Case c;
    c.label = "2E+6M (latency-bound)";
    c.instances = workloads::gpu_instances(workloads::t78_encryption(), 2);
    auto m = workloads::gpu_instances(workloads::t78_montecarlo(), 6, 2);
    c.instances.insert(c.instances.end(), m.begin(), m.end());
    cases.push_back(std::move(c));
  }

  for (const auto& c : cases) {
    std::cout << c.label << ":\n";
    common::TextTable t({"GPUs", "makespan (s)", "energy (J)",
                         "speedup vs 1", "energy vs 1"});
    double t1 = 0.0, e1 = 0.0;
    for (int gpus = 1; gpus <= 4; ++gpus) {
      consolidate::MultiGpuScheduler farm(h.engine, gpus);
      const auto r = farm.run(c.instances);
      if (gpus == 1) {
        t1 = r.makespan.seconds();
        e1 = r.energy.joules();
      }
      t.add_row({std::to_string(gpus), bench::fmt(r.makespan.seconds(), 1),
                 bench::fmt(r.energy.joules(), 0),
                 bench::fmt(t1 / r.makespan.seconds(), 2) + "x",
                 bench::fmt(r.energy.joules() / e1, 2) + "x"});
    }
    std::cout << t << "\n";
  }
  ewc::bench::write_observability_json(argc, argv, "bench_multi_gpu");
  return 0;
}
