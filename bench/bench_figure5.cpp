// Figure 5: predicted vs measured average power for 14 consolidated
// workload variations. Paper: error < 10% everywhere, 6.4% on average.
#include "bench/bench_common.hpp"

#include <algorithm>

#include "common/stats.hpp"
#include "perf/consolidation_model.hpp"
#include "power/meter.hpp"

int main(int argc, char** argv) {
  using namespace ewc;
  bench::Harness h;
  perf::ConsolidationModel perf_model(h.engine.device());
  power::PowerMeter meter(1.0, 0.01, 777);

  bench::header("Figure 5: average power prediction, 14 consolidations",
                "error < 10% on all variations, 6.4% on average");

  const auto enc = workloads::encryption_12k();
  const auto srt = workloads::sorting_6k();
  const auto s = workloads::t56_search();
  const auto bs = workloads::t56_blackscholes();
  const auto e = workloads::t78_encryption();
  const auto m = workloads::t78_montecarlo();

  struct Case {
    std::string label;
    std::vector<std::pair<const workloads::InstanceSpec*, int>> mix;
  };
  const std::vector<Case> cases = {
      {"enc x3", {{&enc, 3}}},
      {"enc x6", {{&enc, 6}}},
      {"enc x9", {{&enc, 9}}},
      {"sort x3", {{&srt, 3}}},
      {"sort x5", {{&srt, 5}}},
      {"1S+1B", {{&s, 1}, {&bs, 1}}},
      {"1S+2B", {{&s, 1}, {&bs, 2}}},
      {"1E+1M", {{&e, 1}, {&m, 1}}},
      {"3enc+2sort", {{&enc, 3}, {&srt, 2}}},
      {"2S+2B", {{&s, 2}, {&bs, 2}}},
      {"2E+1M", {{&e, 2}, {&m, 1}}},
      {"2sort+1B", {{&srt, 2}, {&bs, 1}}},
      {"2enc+1S", {{&enc, 2}, {&s, 1}}},
      {"1M+1B", {{&m, 1}, {&bs, 1}}},
  };

  common::TextTable t({"consolidation", "measured (W)", "predicted (W)",
                       "error"});
  std::vector<double> errors;
  for (const auto& c : cases) {
    gpusim::LaunchPlan plan;
    int id = 0;
    for (const auto& [spec, count] : c.mix) {
      for (int i = 0; i < count; ++i) {
        plan.instances.push_back(gpusim::KernelInstance{spec->gpu, id++, ""});
      }
    }
    const auto run = h.engine.run(plan);
    const double measured =
        meter.average_power(run, power::MeterWindow::kKernelOnly).watts();
    const auto timing = perf_model.predict(plan);
    const auto pw = h.training.model.predict(h.engine.device(), plan, timing);
    const double predicted =
        h.training.model.idle_power().watts() + pw.gpu_power.watts();
    errors.push_back(common::relative_error(predicted, measured));
    t.add_row({c.label, bench::fmt(measured, 1), bench::fmt(predicted, 1),
               bench::fmt(100.0 * errors.back(), 1) + "%"});
  }
  std::cout << t << "\nmean error: " << bench::fmt(100.0 * common::mean(errors), 1)
            << "%  (paper: 6.4%)   max error: "
            << bench::fmt(100.0 * *std::max_element(errors.begin(), errors.end()), 1)
            << "%  (paper bound: 10%)\n";
  ewc::bench::write_observability_json(argc, argv, "bench_figure5");
  return 0;
}
