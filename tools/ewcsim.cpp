// ewcsim: command-line front end to the consolidation library.
//
//   ewcsim list
//   ewcsim compare --workload encryption_12k=6
//   ewcsim predict --workload t78_montecarlo
//   ewcsim trace --requests 60 --rate 2 --threshold 10
//   ewcsim ptx --sample blackscholes
//   ewcsim timeline --workload encryption_12k=9 --csv timeline.csv
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return ewc::cli::run_command(args, std::cout, std::cerr);
}
